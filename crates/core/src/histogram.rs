//! TTC (time-to-completion) histograms, as printed by the paper's
//! `--ttc-histograms` option: one count per whole millisecond — plus a
//! log2-scaled microsecond resolution for the service layer, whose
//! queue-wait distributions live far below one millisecond.

/// Bucket scale of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Resolution {
    /// One linear bucket per whole millisecond (the paper's TTC format).
    #[default]
    Millis,
    /// One bucket per power of two of microseconds: bucket `k` covers
    /// `[2^(k-1), 2^k)` µs (bucket 0 is `< 1` µs). Sub-millisecond
    /// latencies keep ~2x relative resolution instead of flattening to
    /// zero.
    LogMicros,
}

/// A latency histogram with an overflow bucket, in one of two scales
/// ([`Resolution`]).
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    buckets: Vec<u32>,
    overflow: u32,
    samples: u64,
    resolution: Resolution,
}

/// Largest tracked latency, in milliseconds; beyond this, samples land in
/// the overflow bucket.
pub const MAX_TRACKED_MS: u64 = 60_000;

/// Number of log2 microsecond buckets; bucket 32 covers up to 2^32 µs
/// (~71 min), beyond which samples land in the overflow bucket.
const MICRO_BUCKETS: usize = 33;

/// The saturated value reported for microsecond overflow samples.
pub const MAX_TRACKED_US: u64 = (1 << 32) - 1;

fn micro_bucket(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        // Clamped to the overflow sentinel: even a `u64::MAX` sample
        // yields an index `record` routes to the overflow bucket instead
        // of one past the bucket array.
        (64 - us.leading_zeros() as usize).min(MICRO_BUCKETS)
    }
}

/// The upper bound (inclusive) of a log2 microsecond bucket.
fn micro_bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        (1u64 << idx) - 1
    }
}

impl Histogram {
    /// An empty millisecond-resolution histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// An empty log2-microsecond-resolution histogram.
    pub fn micros() -> Self {
        Histogram {
            resolution: Resolution::LogMicros,
            ..Histogram::default()
        }
    }

    /// This histogram's bucket scale.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Records one sample.
    pub fn record(&mut self, nanos: u64) {
        self.samples += 1;
        let idx = match self.resolution {
            Resolution::Millis => {
                let ms = nanos / 1_000_000;
                if ms >= MAX_TRACKED_MS {
                    self.overflow += 1;
                    return;
                }
                ms as usize
            }
            Resolution::LogMicros => {
                let idx = micro_bucket(nanos / 1_000);
                if idx >= MICRO_BUCKETS {
                    self.overflow += 1;
                    return;
                }
                idx
            }
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Samples beyond [`MAX_TRACKED_MS`].
    pub fn overflow(&self) -> u32 {
        self.overflow
    }

    /// Folds another histogram in (thread merge). An empty histogram
    /// adopts the other's resolution; merging two non-empty histograms of
    /// different resolutions is a bug.
    ///
    /// # Panics
    ///
    /// Panics when both histograms hold samples at different resolutions.
    pub fn merge(&mut self, other: &Histogram) {
        if self.resolution != other.resolution {
            if other.samples == 0 {
                return;
            }
            assert!(
                self.samples == 0,
                "cannot merge histograms of different resolutions"
            );
            self.resolution = other.resolution;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.overflow += other.overflow;
        self.samples += other.samples;
    }

    /// Non-empty `(value, count)` pairs in the histogram's native unit:
    /// `(ms, count)` at millisecond resolution (the format of the paper's
    /// output, "a space-delimited list of pairs ttc, count"),
    /// `(bucket upper bound in µs, count)` at microsecond resolution.
    pub fn pairs(&self) -> Vec<(u64, u32)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(idx, c)| {
                let value = match self.resolution {
                    Resolution::Millis => idx as u64,
                    Resolution::LogMicros => micro_bucket_upper(idx),
                };
                (value, *c)
            })
            .collect()
    }

    /// The bucket index holding the p-th percentile, if any samples were
    /// tracked; `None` in the bucket slot means overflow.
    fn percentile_bucket(&self, p: f64) -> Option<Option<usize>> {
        if self.samples == 0 {
            return None;
        }
        let target = ((self.samples as f64) * (p / 100.0)).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (idx, c) in self.buckets.iter().enumerate() {
            acc += u64::from(*c);
            if acc >= target {
                return Some(Some(idx));
            }
        }
        Some(None)
    }

    /// The p-th percentile (0..=100) in milliseconds, if any samples
    /// were tracked. At microsecond resolution the bucket's upper bound
    /// is converted (rounded down) to milliseconds.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let bucket = self.percentile_bucket(p)?;
        Some(match self.resolution {
            Resolution::Millis => bucket.map_or(MAX_TRACKED_MS, |idx| idx as u64),
            Resolution::LogMicros => bucket.map_or(MAX_TRACKED_US, micro_bucket_upper) / 1_000,
        })
    }

    /// The p-th percentile (0..=100) in microseconds, if any samples were
    /// tracked. At microsecond resolution this is the bucket's upper
    /// bound (≤ 2x the true value); at millisecond resolution it is the
    /// millisecond percentile scaled up.
    pub fn percentile_us(&self, p: f64) -> Option<u64> {
        let bucket = self.percentile_bucket(p)?;
        Some(match self.resolution {
            Resolution::Millis => bucket.map_or(MAX_TRACKED_MS, |idx| idx as u64) * 1_000,
            Resolution::LogMicros => bucket.map_or(MAX_TRACKED_US, micro_bucket_upper),
        })
    }

    /// The flight recorder's percentile summary of this histogram —
    /// what a window's swapped-out histogram reduces to at the cut
    /// (all-zero when the window saw no samples).
    pub fn latency_cut(&self) -> stmbench7_obs::LatencyCut {
        stmbench7_obs::LatencyCut {
            p50_us: self.percentile_us(50.0).unwrap_or(0),
            p95_us: self.percentile_us(95.0).unwrap_or(0),
            p99_us: self.percentile_us(99.0).unwrap_or(0),
            samples: self.samples(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn records_into_millisecond_buckets() {
        let mut h = Histogram::new();
        h.record(100_000); // 0.1 ms → bucket 0
        h.record(MS); // bucket 1
        h.record(MS + 999_999); // still bucket 1
        h.record(5 * MS);
        assert_eq!(h.pairs(), vec![(0, 1), (1, 2), (5, 1)]);
        assert_eq!(h.samples(), 4);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn overflow_is_tracked() {
        let mut h = Histogram::new();
        h.record(MAX_TRACKED_MS * MS + 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.samples(), 1);
        assert!(h.pairs().is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(MS);
        b.record(MS);
        b.record(3 * MS);
        a.merge(&b);
        assert_eq!(a.pairs(), vec![(1, 2), (3, 1)]);
        assert_eq!(a.samples(), 3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Sample accounting: tracked pairs plus overflow equals the
            /// total, and merge is addition.
            #[test]
            fn merge_is_addition(
                a in proptest::collection::vec(0u64..200_000, 0..60),
                b in proptest::collection::vec(0u64..200_000, 0..60),
            ) {
                let mut ha = Histogram::new();
                let mut hb = Histogram::new();
                for ms in &a { ha.record(ms * 1_000_000); }
                for ms in &b { hb.record(ms * 1_000_000); }
                let mut merged = ha.clone();
                merged.merge(&hb);
                prop_assert_eq!(merged.samples(), (a.len() + b.len()) as u64);
                let tracked: u64 = merged.pairs().iter().map(|(_, c)| u64::from(*c)).sum();
                prop_assert_eq!(tracked + u64::from(merged.overflow()), merged.samples());
            }

            /// Splitting a sample stream into two histograms and merging
            /// them yields the same percentiles as one histogram — the
            /// flight recorder's window-swap correctness condition.
            #[test]
            fn merged_percentiles_equal_single_histogram(
                a in proptest::collection::vec(0u64..2_000_000, 0..60),
                b in proptest::collection::vec(0u64..2_000_000, 0..60),
            ) {
                let mut whole = Histogram::micros();
                let mut ha = Histogram::micros();
                let mut hb = Histogram::micros();
                for us in &a { whole.record(us * 1_000); ha.record(us * 1_000); }
                for us in &b { whole.record(us * 1_000); hb.record(us * 1_000); }
                ha.merge(&hb);
                prop_assert_eq!(ha.pairs(), whole.pairs());
                for p in [1.0, 50.0, 95.0, 99.0, 100.0] {
                    prop_assert_eq!(ha.percentile_us(p), whole.percentile_us(p), "p{}", p);
                }
            }

            /// Percentiles are monotone in p and bounded by the extremes.
            #[test]
            fn percentiles_are_monotone(
                samples in proptest::collection::vec(0u64..50_000, 1..80),
            ) {
                let mut h = Histogram::new();
                for ms in &samples { h.record(ms * 1_000_000); }
                let lo = *samples.iter().min().unwrap();
                let hi = *samples.iter().max().unwrap();
                let mut last = 0;
                for p in [1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
                    let v = h.percentile(p).unwrap();
                    prop_assert!(v >= last, "p{p} went backwards");
                    prop_assert!((lo..=hi).contains(&v));
                    last = v;
                }
            }
        }
    }

    #[test]
    fn percentiles() {
        let mut h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(ms * MS);
        }
        assert_eq!(h.percentile(50.0), Some(50));
        assert_eq!(h.percentile(99.0), Some(99));
        assert_eq!(h.percentile(100.0), Some(100));
        assert_eq!(Histogram::new().percentile(50.0), None);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        for p in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(h.percentile(p), None, "p{p} of empty histogram");
        }
        assert_eq!(h.samples(), 0);
        assert_eq!(h.overflow(), 0);
        assert!(h.pairs().is_empty());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(7 * MS);
        for p in [0.0, 1.0, 50.0, 95.0, 100.0] {
            assert_eq!(h.percentile(p), Some(7), "p{p} of single sample");
        }
    }

    #[test]
    fn overflow_only_samples_report_the_cap() {
        let mut h = Histogram::new();
        h.record((MAX_TRACKED_MS + 5) * MS);
        h.record(u64::MAX);
        assert_eq!(h.overflow(), 2);
        // Every percentile saturates at the largest tracked latency.
        for p in [1.0, 50.0, 100.0] {
            assert_eq!(h.percentile(p), Some(MAX_TRACKED_MS), "p{p} overflow-only");
        }
    }

    #[test]
    fn percentiles_straddling_the_overflow_bucket() {
        let mut h = Histogram::new();
        for _ in 0..9 {
            h.record(2 * MS);
        }
        h.record(MAX_TRACKED_MS * MS); // exactly the cap → overflow
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.percentile(50.0), Some(2));
        assert_eq!(
            h.percentile(90.0),
            Some(2),
            "p90 is the last tracked sample"
        );
        assert_eq!(
            h.percentile(91.0),
            Some(MAX_TRACKED_MS),
            "p91 falls into overflow"
        );
        assert_eq!(h.percentile(100.0), Some(MAX_TRACKED_MS));
    }

    #[test]
    fn micros_resolution_distinguishes_sub_millisecond_samples() {
        // These three samples all flatten to the 0 ms bucket at
        // millisecond resolution — the motivating case.
        let mut flat = Histogram::new();
        let mut h = Histogram::micros();
        for us in [5u64, 80, 900] {
            flat.record(us * 1_000);
            h.record(us * 1_000);
        }
        assert_eq!(flat.percentile(100.0), Some(0), "ms buckets flatten");
        // 5 µs → bucket (4,8], 80 µs → (64,128], 900 µs → (512,1024].
        assert_eq!(h.pairs(), vec![(7, 1), (127, 1), (1023, 1)]);
        assert_eq!(h.percentile_us(1.0), Some(7));
        assert_eq!(h.percentile_us(50.0), Some(127));
        assert_eq!(h.percentile_us(100.0), Some(1023));
        // The millisecond view of a microsecond histogram rounds down.
        assert_eq!(h.percentile(100.0), Some(1));
        assert_eq!(h.resolution(), Resolution::LogMicros);
    }

    #[test]
    fn micros_edge_cases() {
        let mut h = Histogram::micros();
        h.record(0); // 0 ns → bucket 0
        h.record(999); // sub-µs → bucket 0
        h.record(1_000); // exactly 1 µs → bucket 1
        h.record(1_024 * 1_000); // exactly 2^10 µs → bucket 11
        assert_eq!(h.pairs(), vec![(0, 2), (1, 1), (2047, 1)]);
        assert_eq!(h.samples(), 4);
        assert_eq!(h.overflow(), 0);
        // Saturation: beyond 2^32 µs lands in overflow.
        h.record(u64::MAX);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.percentile_us(100.0), Some(MAX_TRACKED_US));
    }

    #[test]
    fn multi_second_samples_land_in_tracked_buckets() {
        // Seconds-long latencies (a saturated service under overload) are
        // far above the sub-millisecond regime the log2 scale was sized
        // for, but still well inside the 2^32 µs tracked range: they must
        // land in a high tracked bucket, not overflow.
        let mut h = Histogram::micros();
        h.record(3_000_000_000); // 3 s = 3·10^6 µs → bucket (2^21, 2^22]
        h.record(45_000_000_000); // 45 s → bucket (2^25, 2^26]
        assert_eq!(h.overflow(), 0, "multi-second samples are tracked");
        assert_eq!(h.samples(), 2);
        assert_eq!(h.percentile_us(1.0), Some((1 << 22) - 1));
        assert_eq!(h.percentile_us(100.0), Some((1 << 26) - 1));
        // The tracked+overflow accounting still balances.
        let tracked: u64 = h.pairs().iter().map(|(_, c)| u64::from(*c)).sum();
        assert_eq!(tracked, 2);
    }

    #[test]
    fn beyond_the_top_bucket_saturates_instead_of_overflowing_the_index() {
        // Samples beyond 2^32 µs (~71 min) exceed every log2 bucket; the
        // clamped index must route them to the overflow bucket — never
        // panic, never index past the bucket array.
        let mut h = Histogram::micros();
        for nanos in [
            (1u64 << 33) * 1_000, // one bucket past the top
            u64::MAX / 1_000,     // enormous but not the extreme
            u64::MAX,             // the extreme
        ] {
            h.record(nanos);
        }
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.samples(), 3);
        assert!(h.pairs().is_empty(), "nothing lands in tracked buckets");
        // Percentiles saturate at the cap rather than inventing values.
        for p in [1.0, 50.0, 100.0] {
            assert_eq!(h.percentile_us(p), Some(MAX_TRACKED_US), "p{p}");
        }
        // A merge carries the saturated counts along unchanged.
        let mut other = Histogram::micros();
        other.record(5_000); // 5 µs, tracked
        other.merge(&h);
        assert_eq!(other.samples(), 4);
        assert_eq!(other.overflow(), 3);
        assert_eq!(other.percentile_us(25.0), Some(7));
        assert_eq!(other.percentile_us(100.0), Some(MAX_TRACKED_US));
    }

    #[test]
    fn micros_percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::micros();
        for us in [3u64, 12, 12, 200, 4_000, 65_000] {
            h.record(us * 1_000);
        }
        let mut last = 0;
        for p in [1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
            let v = h.percentile_us(p).unwrap();
            assert!(v >= last, "p{p} went backwards");
            // Upper bucket bound is within 2x of the largest sample.
            assert!(v <= 2 * 65_000);
            last = v;
        }
        assert_eq!(Histogram::micros().percentile_us(50.0), None);
    }

    #[test]
    fn millis_percentile_us_scales_up() {
        let mut h = Histogram::new();
        h.record(7 * MS);
        assert_eq!(h.percentile_us(50.0), Some(7_000));
    }

    #[test]
    fn empty_histogram_adopts_resolution_on_merge() {
        let mut h = Histogram::new(); // default Millis, empty
        let mut m = Histogram::micros();
        m.record(5_000);
        h.merge(&m);
        assert_eq!(h.resolution(), Resolution::LogMicros);
        assert_eq!(h.samples(), 1);
        // Merging an empty histogram of the other resolution is a no-op.
        h.merge(&Histogram::new());
        assert_eq!(h.samples(), 1);
    }

    #[test]
    #[should_panic(expected = "different resolutions")]
    fn merging_mixed_resolutions_panics() {
        let mut a = Histogram::new();
        a.record(MS);
        let mut b = Histogram::micros();
        b.record(MS);
        a.merge(&b);
    }

    #[test]
    fn merge_is_bucket_wise_addition_at_micros_resolution() {
        let mut a = Histogram::micros();
        let mut b = Histogram::micros();
        for us in [5u64, 80] {
            a.record(us * 1_000);
        }
        for us in [5u64, 900] {
            b.record(us * 1_000);
        }
        a.merge(&b);
        // 5 µs → (4,8] twice, 80 µs → (64,128], 900 µs → (512,1024].
        assert_eq!(a.pairs(), vec![(7, 2), (127, 1), (1023, 1)]);
        assert_eq!(a.samples(), 4);
    }

    /// The window-swap totals path (flight recorder): recording into
    /// per-window histograms and merging them must be indistinguishable
    /// from recording everything into one histogram — same counts, same
    /// buckets, same percentiles.
    #[test]
    fn merged_windows_equal_one_histogram() {
        let samples_ns: Vec<u64> = (0..200u64).map(|i| (i * 37 + 3) * 1_000).collect();
        for resolution in ["millis", "micros"] {
            let fresh = || match resolution {
                "millis" => Histogram::new(),
                _ => Histogram::micros(),
            };
            let mut whole = fresh();
            let mut totals = fresh();
            let mut window = fresh();
            for (i, &ns) in samples_ns.iter().enumerate() {
                whole.record(ns);
                window.record(ns);
                // Cut a "window" every 13 samples, as the sampler does.
                if i % 13 == 12 {
                    let cut = std::mem::replace(&mut window, fresh());
                    totals.merge(&cut);
                }
            }
            totals.merge(&window); // the final partial window
            assert_eq!(totals.samples(), whole.samples(), "{resolution}");
            assert_eq!(totals.overflow(), whole.overflow(), "{resolution}");
            assert_eq!(totals.pairs(), whole.pairs(), "{resolution}");
            for p in [1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
                assert_eq!(
                    totals.percentile_us(p),
                    whole.percentile_us(p),
                    "{resolution} p{p}"
                );
            }
        }
    }

    #[test]
    fn merge_carries_overflow_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(MS);
        b.record((MAX_TRACKED_MS + 1) * MS);
        a.merge(&b);
        assert_eq!(a.samples(), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.percentile(50.0), Some(1));
        assert_eq!(a.percentile(100.0), Some(MAX_TRACKED_MS));
    }
}
