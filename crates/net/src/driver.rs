//! The remote load driver: replays a deterministic arrival schedule over
//! N persistent TCP connections and decomposes what each request
//! experienced into *client queue wait* (scheduled arrival → send),
//! *network* (round trip minus the server-reported time), and
//! *server-reported service time* — the three lanes the in-process
//! service layer cannot distinguish because it has no wire.
//!
//! The stream is the same one `stmbench7 serve` would replay in-process:
//! identical `(schedule, workload, seed)` triples materialize identical
//! requests, request `i` rides connection `i % N`, and each request's
//! `rng_seed` pins its random choices server-side — which is what the
//! remote-vs-local oracle test leans on.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use stmbench7_core::{
    CategoryLatency, Histogram, OpFilter, OpKind, OpReport, Report, ServiceStats, WorkloadMix,
    WorkloadType,
};
use stmbench7_service::{Request, Schedule};

use crate::wire::{self, Frame, NetRequest, WireOutcome};

/// Full configuration of a remote drive.
#[derive(Clone, Debug)]
pub struct DriveConfig {
    pub schedule: Schedule,
    /// Persistent connections the stream is striped over (request `i`
    /// rides connection `i % connections`).
    pub connections: usize,
    pub workload: WorkloadType,
    pub long_traversals: bool,
    pub structure_mods: bool,
    pub filter: OpFilter,
    pub seed: u64,
}

impl DriveConfig {
    /// A deterministic single-connection drive, all operations on.
    pub fn new(schedule: Schedule, workload: WorkloadType, seed: u64) -> Self {
        DriveConfig {
            schedule,
            connections: 1,
            workload,
            long_traversals: true,
            structure_mods: true,
            filter: OpFilter::none(),
            seed,
        }
    }

    /// The operation mix requests are drawn from — the same pool the
    /// in-process service and the closed-loop engine share.
    pub fn mix(&self) -> WorkloadMix {
        WorkloadMix::compute(
            self.workload,
            self.long_traversals,
            self.structure_mods,
            &self.filter,
        )
    }

    /// The first `n` requests of this configuration's schedule —
    /// byte-identical to the in-process service's stream for the same
    /// `(schedule, workload, seed)`.
    pub fn generate(&self, n: u64) -> Vec<Request> {
        self.schedule.generate(&self.mix(), self.seed, n)
    }

    /// Every request arriving before `horizon` (`None` for closed
    /// schedules, whose request count is not duration-bounded).
    pub fn generate_for(&self, horizon: Duration) -> Option<Vec<Request>> {
        self.schedule.generate_for(&self.mix(), self.seed, horizon)
    }
}

/// A completed remote drive: the client-side [`Report`] (per-operation
/// round-trip latencies plus the three-lane [`ServiceStats`] with the
/// network histogram populated) and the per-request outcomes as they
/// crossed the wire, indexed by request id (`None` = no response, which
/// [`drive`] treats as an error).
pub struct DriveResult {
    pub report: Report,
    pub outcomes: Vec<Option<WireOutcome>>,
}

/// Client-side accounting of one connection.
struct ConnStats {
    completed: Vec<u64>,
    failed: Vec<u64>,
    max_ns: Vec<u64>,
    sum_ns: Vec<u64>,
    hist: Vec<Histogram>,
    queue_wait: Histogram,
    service_time: Histogram,
    e2e: Histogram,
    network: Histogram,
    per_category: Vec<CategoryLatency>,
    rejected: u64,
    outcomes: Vec<(u64, WireOutcome)>,
}

impl ConnStats {
    fn new() -> Self {
        ConnStats {
            completed: vec![0; 45],
            failed: vec![0; 45],
            max_ns: vec![0; 45],
            sum_ns: vec![0; 45],
            hist: (0..45).map(|_| Histogram::new()).collect(),
            queue_wait: Histogram::micros(),
            service_time: Histogram::micros(),
            e2e: Histogram::micros(),
            network: Histogram::micros(),
            per_category: CategoryLatency::all_empty(),
            rejected: 0,
            outcomes: Vec::new(),
        }
    }

    fn record(
        &mut self,
        op: OpKind,
        arrival_ns: u64,
        send_ns: u64,
        recv_ns: u64,
        resp: &wire::NetResponse,
    ) {
        match &resp.outcome {
            WireOutcome::Rejected => {
                // Never executed: counted, but no latency to decompose.
                self.rejected += 1;
                self.outcomes.push((resp.id, resp.outcome.clone()));
                return;
            }
            WireOutcome::Done(_) => {
                let i = op.index();
                let rtt_ns = recv_ns.saturating_sub(send_ns);
                self.completed[i] += 1;
                self.max_ns[i] = self.max_ns[i].max(rtt_ns);
                self.sum_ns[i] += rtt_ns;
                self.hist[i].record(rtt_ns);
            }
            WireOutcome::Fail(_) => self.failed[op.index()] += 1,
        }
        let client_queue_ns = send_ns.saturating_sub(arrival_ns);
        let rtt_ns = recv_ns.saturating_sub(send_ns);
        // The transport's share: everything between send and receive the
        // server does not account for (syscalls, the loopback or real
        // network, frame codec). Server-side queueing is deliberately
        // excluded — it shows up in the server's own report.
        let network_ns = rtt_ns.saturating_sub(resp.queue_ns.saturating_add(resp.service_ns));
        self.queue_wait.record(client_queue_ns);
        self.service_time.record(resp.service_ns);
        self.network.record(network_ns);
        self.e2e.record(recv_ns.saturating_sub(arrival_ns));
        let cat = &mut self.per_category[op.category().index()];
        cat.queue_wait.record(client_queue_ns);
        cat.service_time.record(resp.service_ns);
        self.outcomes.push((resp.id, resp.outcome.clone()));
    }
}

/// Replays `requests` (see [`DriveConfig::generate`]) against a running
/// `stmbench7 net-serve` at `addr`, over `cfg.connections` persistent
/// connections, honoring scheduled arrival times. Returns when every
/// request has been answered.
pub fn drive(
    addr: impl ToSocketAddrs,
    cfg: &DriveConfig,
    requests: &[Request],
) -> io::Result<DriveResult> {
    assert!(cfg.connections >= 1, "at least one connection required");
    let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
    })?;
    let mix = cfg.mix();

    // Stripe the stream: connection c carries requests i ≡ c (mod N), in
    // stream order within the connection.
    let mut slices: Vec<Vec<Request>> = vec![Vec::new(); cfg.connections];
    for (i, req) in requests.iter().enumerate() {
        slices[i % cfg.connections].push(*req);
    }
    let streams: Vec<TcpStream> = (0..cfg.connections)
        .map(|_| TcpStream::connect(addr))
        .collect::<io::Result<_>>()?;

    // Send timestamps cross from writer to reader threads by request id.
    let send_ns: Vec<AtomicU64> = (0..requests.len()).map(|_| AtomicU64::new(0)).collect();

    let epoch = Instant::now();
    let all_stats: io::Result<Vec<ConnStats>> = std::thread::scope(|scope| {
        let mut readers = Vec::with_capacity(cfg.connections);
        for (slice, stream) in slices.iter().zip(&streams) {
            let send_ns = &send_ns;
            // Writer: replay this connection's share of the schedule.
            let write_half = stream.try_clone()?;
            scope.spawn(move || -> io::Result<()> {
                let mut write_half = write_half;
                for req in slice {
                    let target = epoch + Duration::from_nanos(req.arrival_ns);
                    let now = Instant::now();
                    if now < target {
                        std::thread::sleep(target - now);
                    }
                    // Release: the socket round trip is not a formal
                    // happens-before edge for this atomic; pair with the
                    // reader's Acquire so it never observes the initial 0.
                    send_ns[req.id as usize]
                        .store(epoch.elapsed().as_nanos() as u64, Ordering::Release);
                    wire::write_frame(
                        &mut write_half,
                        &Frame::Request(NetRequest {
                            id: req.id,
                            op: req.op,
                            rng_seed: req.rng_seed,
                        }),
                    )?;
                }
                Ok(())
            });
            // Reader: collect exactly this connection's responses.
            let read_half = stream.try_clone()?;
            readers.push(scope.spawn(move || -> io::Result<ConnStats> {
                let mut reader = BufReader::new(read_half);
                let mut stats = ConnStats::new();
                for _ in 0..slice.len() {
                    let frame = wire::read_frame(&mut reader)?.ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed with responses outstanding",
                        )
                    })?;
                    let Frame::Response(resp) = frame else {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "server sent a non-response frame mid-stream",
                        ));
                    };
                    let recv_ns = epoch.elapsed().as_nanos() as u64;
                    let req = requests
                        .get(resp.id as usize)
                        .filter(|r| r.id == resp.id)
                        .ok_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("response for unknown request id {}", resp.id),
                            )
                        })?;
                    let sent = send_ns[req.id as usize].load(Ordering::Acquire);
                    stats.record(req.op, req.arrival_ns, sent, recv_ns, &resp);
                }
                Ok(stats)
            }));
        }
        readers
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .collect()
    });
    let all_stats = all_stats?;
    let elapsed = epoch.elapsed();
    drop(streams); // hang up: the server's connection readers see EOF

    Ok(merge(cfg, &mix, requests, elapsed, all_stats))
}

/// Sends the graceful-shutdown control frame on a fresh connection and
/// waits for the acknowledgement.
pub fn shutdown(addr: impl ToSocketAddrs) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
    })?)?;
    wire::write_frame(&mut stream, &Frame::Shutdown)?;
    match wire::read_frame(&mut BufReader::new(stream))? {
        Some(Frame::ShutdownAck) => Ok(()),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected shutdown ack, got {other:?}"),
        )),
    }
}

fn merge(
    cfg: &DriveConfig,
    mix: &WorkloadMix,
    requests: &[Request],
    elapsed: Duration,
    all_stats: Vec<ConnStats>,
) -> DriveResult {
    let mut per_op: Vec<OpReport> = OpKind::ALL
        .iter()
        .map(|op| OpReport::empty(*op, mix.expected(*op)))
        .collect();
    let mut queue_wait = Histogram::micros();
    let mut service_time = Histogram::micros();
    let mut e2e = Histogram::micros();
    let mut network = Histogram::micros();
    let mut per_category = CategoryLatency::all_empty();
    let mut rejected = 0;
    let mut outcomes: Vec<Option<WireOutcome>> = vec![None; requests.len()];
    for stats in &all_stats {
        for (i, r) in per_op.iter_mut().enumerate() {
            r.completed += stats.completed[i];
            r.failed += stats.failed[i];
            r.max_ns = r.max_ns.max(stats.max_ns[i]);
            r.sum_ns += stats.sum_ns[i];
            r.hist.merge(&stats.hist[i]);
        }
        queue_wait.merge(&stats.queue_wait);
        service_time.merge(&stats.service_time);
        e2e.merge(&stats.e2e);
        network.merge(&stats.network);
        for (merged, conn) in per_category.iter_mut().zip(&stats.per_category) {
            merged.merge(conn);
        }
        rejected += stats.rejected;
        for (id, outcome) in &stats.outcomes {
            outcomes[*id as usize] = Some(outcome.clone());
        }
    }
    let executed = queue_wait.samples();
    let report = Report {
        backend: "net".to_string(),
        threads: cfg.connections,
        workload: cfg.workload,
        long_traversals: cfg.long_traversals,
        structure_mods: cfg.structure_mods,
        seed: cfg.seed,
        elapsed,
        per_op,
        stm: None,
        service: Some(ServiceStats {
            schedule: cfg.schedule.key(),
            // The client's "workers" are its connections; it has no
            // bounded queue or batching of its own (cap 0, batch 1).
            workers: cfg.connections,
            queue_cap: 0,
            batch_max: 1,
            offered: requests.len() as u64,
            rejected,
            batches: executed,
            queue_wait,
            service_time,
            e2e,
            network: Some(network),
            per_category,
        }),
    };
    DriveResult { report, outcomes }
}
