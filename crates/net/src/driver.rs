//! The remote load driver: replays a deterministic arrival schedule over
//! N persistent TCP connections and decomposes what each request
//! experienced into *client queue wait* (scheduled arrival → send),
//! *network* (round trip minus the server-reported time), and
//! *server-reported service time* — the three lanes the in-process
//! service layer cannot distinguish because it has no wire.
//!
//! The stream is the same one `stmbench7 serve` would replay in-process:
//! identical `(schedule, workload, seed)` triples materialize identical
//! requests, request `i` rides connection `i % N`, and each request's
//! `rng_seed` pins its random choices server-side — which is what the
//! remote-vs-local oracle test leans on.

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use stmbench7_core::{
    CategoryLatency, Histogram, OpFilter, OpKind, OpReport, Report, ServiceStats, WorkloadMix,
    WorkloadType,
};
use stmbench7_service::{Request, Schedule};

use crate::wire::{self, Frame, NetRequest, WireOutcome};

/// Full configuration of a remote drive.
#[derive(Clone, Debug)]
pub struct DriveConfig {
    pub schedule: Schedule,
    /// Persistent connections the stream is striped over (request `i`
    /// rides connection `i % connections`).
    pub connections: usize,
    /// Pipelining window: at most this many requests in flight per
    /// connection (the writer waits for responses past the cap, an
    /// admission control of the client's own). `0` = unbounded — issue
    /// purely by schedule, however far responses lag.
    pub inflight: usize,
    pub workload: WorkloadType,
    pub long_traversals: bool,
    pub structure_mods: bool,
    pub filter: OpFilter,
    pub seed: u64,
}

impl DriveConfig {
    /// A deterministic single-connection drive, all operations on.
    pub fn new(schedule: Schedule, workload: WorkloadType, seed: u64) -> Self {
        DriveConfig {
            schedule,
            connections: 1,
            inflight: 0,
            workload,
            long_traversals: true,
            structure_mods: true,
            filter: OpFilter::none(),
            seed,
        }
    }

    /// The operation mix requests are drawn from — the same pool the
    /// in-process service and the closed-loop engine share.
    pub fn mix(&self) -> WorkloadMix {
        WorkloadMix::compute(
            self.workload,
            self.long_traversals,
            self.structure_mods,
            &self.filter,
        )
    }

    /// The first `n` requests of this configuration's schedule —
    /// byte-identical to the in-process service's stream for the same
    /// `(schedule, workload, seed)`.
    pub fn generate(&self, n: u64) -> Vec<Request> {
        self.schedule.generate(&self.mix(), self.seed, n)
    }

    /// Every request arriving before `horizon` (`None` for closed
    /// schedules, whose request count is not duration-bounded).
    pub fn generate_for(&self, horizon: Duration) -> Option<Vec<Request>> {
        self.schedule.generate_for(&self.mix(), self.seed, horizon)
    }
}

/// A completed remote drive: the client-side [`Report`] (per-operation
/// round-trip latencies plus the three-lane [`ServiceStats`] with the
/// network histogram populated) and the per-request outcomes as they
/// crossed the wire, indexed by request id (`None` = no response, which
/// [`drive`] treats as an error).
pub struct DriveResult {
    pub report: Report,
    pub outcomes: Vec<Option<WireOutcome>>,
}

/// Client-side accounting of one connection.
struct ConnStats {
    completed: Vec<u64>,
    failed: Vec<u64>,
    max_ns: Vec<u64>,
    sum_ns: Vec<u64>,
    hist: Vec<Histogram>,
    queue_wait: Histogram,
    service_time: Histogram,
    e2e: Histogram,
    network: Histogram,
    per_category: Vec<CategoryLatency>,
    rejected: u64,
    /// Times this connection was re-established after a mid-drive break.
    reconnects: u64,
    outcomes: Vec<(u64, WireOutcome)>,
}

impl ConnStats {
    fn new() -> Self {
        ConnStats {
            completed: vec![0; 45],
            failed: vec![0; 45],
            max_ns: vec![0; 45],
            sum_ns: vec![0; 45],
            hist: (0..45).map(|_| Histogram::new()).collect(),
            queue_wait: Histogram::micros(),
            service_time: Histogram::micros(),
            e2e: Histogram::micros(),
            network: Histogram::micros(),
            per_category: CategoryLatency::all_empty(),
            rejected: 0,
            reconnects: 0,
            outcomes: Vec::new(),
        }
    }

    fn record(
        &mut self,
        op: OpKind,
        arrival_ns: u64,
        send_ns: u64,
        recv_ns: u64,
        resp: &wire::NetResponse,
    ) {
        match &resp.outcome {
            WireOutcome::Rejected => {
                // Never executed: counted, but no latency to decompose.
                self.rejected += 1;
                self.outcomes.push((resp.id, resp.outcome.clone()));
                return;
            }
            WireOutcome::Done(_) => {
                let i = op.index();
                let rtt_ns = recv_ns.saturating_sub(send_ns);
                self.completed[i] += 1;
                self.max_ns[i] = self.max_ns[i].max(rtt_ns);
                self.sum_ns[i] += rtt_ns;
                self.hist[i].record(rtt_ns);
            }
            WireOutcome::Fail(_) => self.failed[op.index()] += 1,
        }
        let client_queue_ns = send_ns.saturating_sub(arrival_ns);
        let rtt_ns = recv_ns.saturating_sub(send_ns);
        // The transport's share: everything between send and receive the
        // server does not account for (syscalls, the loopback or real
        // network, frame codec). Server-side queueing is deliberately
        // excluded — it shows up in the server's own report.
        let network_ns = rtt_ns.saturating_sub(resp.queue_ns.saturating_add(resp.service_ns));
        self.queue_wait.record(client_queue_ns);
        self.service_time.record(resp.service_ns);
        self.network.record(network_ns);
        self.e2e.record(recv_ns.saturating_sub(arrival_ns));
        let cat = &mut self.per_category[op.category().index()];
        cat.queue_wait.record(client_queue_ns);
        cat.service_time.record(resp.service_ns);
        self.outcomes.push((resp.id, resp.outcome.clone()));
    }
}

/// Reconnect policy: a broken connection is re-established up to this
/// many times per connection before the drive gives up …
const RECONNECT_MAX: u64 = 8;
/// … with exponential backoff between attempts, from here …
const BACKOFF_START: Duration = Duration::from_millis(10);
/// … capped here.
const BACKOFF_CAP: Duration = Duration::from_millis(200);

/// Transport-shaped errors worth a reconnect; protocol violations
/// (`InvalidData`) are not — retrying a server that talks garbage only
/// hides the bug.
fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
            | io::ErrorKind::WriteZero
            | io::ErrorKind::TimedOut
    )
}

/// Connects with Nagle off: a pipelined writer waits on responses, so a
/// small request lingering in Nagle's buffer behind a delayed ACK would
/// stall the whole window.
fn connect_nodelay(addr: SocketAddr) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// The per-connection pipelining window, shared between the writer (the
/// session thread) and the response reader.
struct Window {
    state: Mutex<WindowState>,
    drained: Condvar,
}

struct WindowState {
    outstanding: usize,
    failed: bool,
}

/// Replays `requests` (see [`DriveConfig::generate`]) against a running
/// `stmbench7 net-serve` at `addr`, over `cfg.connections` persistent
/// connections, honoring scheduled arrival times, with at most
/// `cfg.inflight` requests in flight per connection (0 = unbounded).
/// Returns when every request has been answered; a connection broken
/// mid-drive is re-established with capped backoff and its unanswered
/// requests are re-sent (counted in the report's `reconnects` — note the
/// at-least-once caveat: a request whose response was lost executes
/// again server-side).
pub fn drive(
    addr: impl ToSocketAddrs,
    cfg: &DriveConfig,
    requests: &[Request],
) -> io::Result<DriveResult> {
    assert!(cfg.connections >= 1, "at least one connection required");
    let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
    })?;
    let mix = cfg.mix();

    // Stripe the stream: connection c carries requests i ≡ c (mod N), in
    // stream order within the connection.
    let mut slices: Vec<Vec<Request>> = vec![Vec::new(); cfg.connections];
    for (i, req) in requests.iter().enumerate() {
        slices[i % cfg.connections].push(*req);
    }
    // Connect up-front (fail fast if the server is absent) so connection
    // setup doesn't eat into the schedule.
    let streams: Vec<TcpStream> = (0..cfg.connections)
        .map(|_| connect_nodelay(addr))
        .collect::<io::Result<_>>()?;

    // Send timestamps cross from writer to reader threads by request id.
    let send_ns: Vec<AtomicU64> = (0..requests.len()).map(|_| AtomicU64::new(0)).collect();

    let epoch = Instant::now();
    let all_stats: io::Result<Vec<ConnStats>> = std::thread::scope(|scope| {
        let mut sessions = Vec::with_capacity(cfg.connections);
        for (slice, stream) in slices.iter().zip(streams) {
            let send_ns = &send_ns;
            sessions.push(scope.spawn(move || -> io::Result<ConnStats> {
                run_connection(addr, cfg.inflight, epoch, slice, stream, send_ns)
            }));
        }
        sessions
            .into_iter()
            .map(|h| h.join().expect("connection session panicked"))
            .collect()
    });
    let all_stats = all_stats?;
    let elapsed = epoch.elapsed();

    Ok(merge(cfg, &mix, requests, elapsed, all_stats))
}

/// One connection's session: replay its slice of the schedule, windowed
/// by `inflight`, reconnecting (and re-sending whatever is still
/// unanswered) on transport errors until the slice is fully answered.
fn run_connection(
    addr: SocketAddr,
    inflight: usize,
    epoch: Instant,
    slice: &[Request],
    first: TcpStream,
    send_ns: &[AtomicU64],
) -> io::Result<ConnStats> {
    let mut stats = ConnStats::new();
    let mut answered = vec![false; slice.len()];
    let pos_of: HashMap<u64, usize> = slice.iter().enumerate().map(|(k, r)| (r.id, k)).collect();
    let mut stream = Some(first);
    loop {
        if answered.iter().all(|a| *a) {
            return Ok(stats);
        }
        let current = match stream.take() {
            Some(s) => s,
            None => match connect_nodelay(addr) {
                Ok(s) => s,
                Err(e) => {
                    back_off_or_bail(&mut stats, e)?;
                    continue;
                }
            },
        };
        match run_attempt(
            &current,
            inflight,
            epoch,
            slice,
            &pos_of,
            &mut answered,
            &mut stats,
            send_ns,
        ) {
            Ok(()) => return Ok(stats),
            Err(e) => back_off_or_bail(&mut stats, e)?,
        }
    }
}

/// Counts a reconnect and sleeps the capped exponential backoff, or
/// propagates the error once the budget is spent (or the error is not
/// transport-shaped).
fn back_off_or_bail(stats: &mut ConnStats, e: io::Error) -> io::Result<()> {
    if !retryable(&e) || stats.reconnects >= RECONNECT_MAX {
        return Err(e);
    }
    stats.reconnects += 1;
    let exp = (stats.reconnects - 1).min(5) as u32;
    std::thread::sleep((BACKOFF_START * 2u32.pow(exp)).min(BACKOFF_CAP));
    Ok(())
}

/// One attempt over one live stream: write every still-unanswered
/// request (in stream order, honoring arrivals and the window), while a
/// scoped reader thread collects responses in whatever order the
/// pipelined server completes them.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    stream: &TcpStream,
    inflight: usize,
    epoch: Instant,
    slice: &[Request],
    pos_of: &HashMap<u64, usize>,
    answered: &mut [bool],
    stats: &mut ConnStats,
    send_ns: &[AtomicU64],
) -> io::Result<()> {
    let cap = if inflight == 0 { usize::MAX } else { inflight };
    let to_send: Vec<Request> = slice
        .iter()
        .zip(answered.iter())
        .filter(|(_, done)| !**done)
        .map(|(req, _)| *req)
        .collect();
    let expect = to_send.len();
    let window = Window {
        state: Mutex::new(WindowState {
            outstanding: 0,
            failed: false,
        }),
        drained: Condvar::new(),
    };

    std::thread::scope(|scope| {
        let reader = scope.spawn(|| -> io::Result<()> {
            let mut reader = BufReader::new(stream);
            let result = (|| -> io::Result<()> {
                for _ in 0..expect {
                    let frame = wire::read_frame(&mut reader)?.ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed with responses outstanding",
                        )
                    })?;
                    let Frame::Response(resp) = frame else {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "server sent a non-response frame mid-stream",
                        ));
                    };
                    let recv_ns = epoch.elapsed().as_nanos() as u64;
                    let &pos = pos_of.get(&resp.id).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("response for unknown request id {}", resp.id),
                        )
                    })?;
                    if answered[pos] {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("duplicate response for request id {}", resp.id),
                        ));
                    }
                    let req = &slice[pos];
                    let sent = send_ns[req.id as usize].load(Ordering::Acquire);
                    stats.record(req.op, req.arrival_ns, sent, recv_ns, &resp);
                    answered[pos] = true;
                    let mut w = window.state.lock().expect("window poisoned");
                    w.outstanding = w.outstanding.saturating_sub(1);
                    drop(w);
                    window.drained.notify_all();
                }
                Ok(())
            })();
            if result.is_err() {
                // Unblock a writer waiting on the window.
                window.state.lock().expect("window poisoned").failed = true;
                window.drained.notify_all();
            }
            result
        });

        // Writer: this thread replays the unanswered share of the slice.
        let mut writer_result: io::Result<()> = Ok(());
        let mut write_half = stream;
        for req in &to_send {
            {
                let mut w = window.state.lock().expect("window poisoned");
                while !w.failed && w.outstanding >= cap {
                    w = window.drained.wait(w).expect("window poisoned");
                }
                if w.failed {
                    break; // the reader's error wins
                }
                w.outstanding += 1;
            }
            let target = epoch + Duration::from_nanos(req.arrival_ns);
            let now = Instant::now();
            if now < target {
                std::thread::sleep(target - now);
            }
            // Release: the socket round trip is not a formal
            // happens-before edge for this atomic; pair with the reader's
            // Acquire so it never observes the initial 0.
            send_ns[req.id as usize].store(epoch.elapsed().as_nanos() as u64, Ordering::Release);
            if let Err(e) = wire::write_frame(
                &mut write_half,
                &Frame::Request(NetRequest {
                    id: req.id,
                    op: req.op,
                    rng_seed: req.rng_seed,
                }),
            ) {
                window.state.lock().expect("window poisoned").failed = true;
                // Unblock the reader out of its blocking read.
                let _ = stream.shutdown(Shutdown::Both);
                writer_result = Err(e);
                break;
            }
        }
        let reader_result = reader.join().expect("response reader panicked");
        reader_result.and(writer_result)
    })
}

/// Sends the graceful-shutdown control frame on a fresh connection and
/// waits for the acknowledgement.
pub fn shutdown(addr: impl ToSocketAddrs) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
    })?)?;
    wire::write_frame(&mut stream, &Frame::Shutdown)?;
    match wire::read_frame(&mut BufReader::new(stream))? {
        Some(Frame::ShutdownAck) => Ok(()),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected shutdown ack, got {other:?}"),
        )),
    }
}

fn merge(
    cfg: &DriveConfig,
    mix: &WorkloadMix,
    requests: &[Request],
    elapsed: Duration,
    all_stats: Vec<ConnStats>,
) -> DriveResult {
    let mut per_op: Vec<OpReport> = OpKind::ALL
        .iter()
        .map(|op| OpReport::empty(*op, mix.expected(*op)))
        .collect();
    let mut queue_wait = Histogram::micros();
    let mut service_time = Histogram::micros();
    let mut e2e = Histogram::micros();
    let mut network = Histogram::micros();
    let mut per_category = CategoryLatency::all_empty();
    let mut rejected = 0;
    let mut reconnects = 0;
    let mut outcomes: Vec<Option<WireOutcome>> = vec![None; requests.len()];
    for stats in &all_stats {
        for (i, r) in per_op.iter_mut().enumerate() {
            r.completed += stats.completed[i];
            r.failed += stats.failed[i];
            r.max_ns = r.max_ns.max(stats.max_ns[i]);
            r.sum_ns += stats.sum_ns[i];
            r.hist.merge(&stats.hist[i]);
        }
        queue_wait.merge(&stats.queue_wait);
        service_time.merge(&stats.service_time);
        e2e.merge(&stats.e2e);
        network.merge(&stats.network);
        for (merged, conn) in per_category.iter_mut().zip(&stats.per_category) {
            merged.merge(conn);
        }
        rejected += stats.rejected;
        reconnects += stats.reconnects;
        for (id, outcome) in &stats.outcomes {
            outcomes[*id as usize] = Some(outcome.clone());
        }
    }
    let executed = queue_wait.samples();
    let report = Report {
        backend: "net".to_string(),
        threads: cfg.connections,
        workload: cfg.workload,
        long_traversals: cfg.long_traversals,
        structure_mods: cfg.structure_mods,
        seed: cfg.seed,
        elapsed,
        per_op,
        stm: None,
        contention: None,
        service: Some(ServiceStats {
            schedule: cfg.schedule.key(),
            // The client's "workers" are its connections; it has no
            // bounded queue or batching of its own (cap 0, batch 1).
            workers: cfg.connections,
            queue_cap: 0,
            batch_max: 1,
            affinity: "none".to_string(),
            offered: requests.len() as u64,
            rejected,
            reconnects,
            busy_ns: 0,
            idle_ns: 0,
            worker_busy_ns: Vec::new(),
            trace_dropped: 0,
            batches: executed,
            write_batches: 0,
            max_write_batch: 0,
            steals: 0,
            queue_wait,
            service_time,
            e2e,
            network: Some(network),
            per_category,
        }),
        timeseries: None,
    };
    DriveResult { report, outcomes }
}
