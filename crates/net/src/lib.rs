//! `stmbench7-net` — a real network boundary in front of every STMBench7
//! backend, built on `std::net` alone (the build environment is offline;
//! loopback is the reference transport).
//!
//! The service layer (PR 3) made the benchmark request-driven but kept
//! driver and executor in one process — one address space, one clock, no
//! transport. This crate splits them:
//!
//! * [`wire`] — the versioned, length-prefixed binary protocol
//!   ([`wire::Frame`]): request = id + op + rng seed, response = outcome
//!   plus server-side queue/service timings, plus a graceful-shutdown
//!   control frame. Hand-rolled encode/decode in the no-serde style of
//!   the JSON writer, pinned by golden-bytes tests; decoding is total
//!   (arbitrary bytes yield `Err`, never a panic).
//! * [`server`] — [`serve_net`]: a multi-threaded TCP server feeding
//!   decoded requests into the existing `stmbench7-service` queue/worker
//!   pool through [`stmbench7_service::serve_source`], so admission,
//!   batching and latency decomposition are reused rather than
//!   reimplemented. CLI: `stmbench7 net-serve`.
//! * [`driver`] — [`drive`]: the remote load driver replaying the same
//!   deterministic arrival schedules (`closed:`/`open:`/`bursty:`) over
//!   N persistent connections, decomposing per-request latency into
//!   client queue wait, network round trip, and server-reported service
//!   time. CLI: `stmbench7 net-drive`.
//!
//! The wire adds transport, never semantics: the remote-vs-local oracle
//! test drives the identical schedule in-process and over a loopback
//! socket and asserts identical operation outcomes.

pub mod driver;
pub mod server;
pub mod wire;

pub use driver::{drive, shutdown, DriveConfig, DriveResult};
pub use server::serve_net;
pub use wire::{Frame, NetRequest, NetResponse, WireError, WireOutcome, WIRE_VERSION};
