//! The TCP front end: accepts connections, decodes request frames, and
//! feeds them into the `stmbench7-service` queue/worker pool — so
//! admission control, read-only batching and the latency decomposition
//! are exactly the in-process service's, with a wire in front.
//!
//! One reader thread per connection decodes frames and offers requests
//! through the service [`Ingress`]; the pool's observer hook routes each
//! completed request's response to a per-connection *writer thread*
//! through a channel, so a client that stops reading stalls only its own
//! writer — never the shared worker pool. A [`Frame::Shutdown`] control
//! frame stops the acceptor, force-closes every other connection's
//! socket (an idle client cannot hold the server open), drains the
//! queue, and lets [`serve_net`] return the merged [`ServeResult`] — the
//! graceful-shutdown path the CI smoke test exercises.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::{io, thread};

use stmbench7_backend::Backend;
use stmbench7_data::{OpOutcome, StructureParams};
use stmbench7_service::{serve_source, Ingress, Request, ServeConfig, ServeResult};

use crate::wire::{self, Frame, NetResponse, WireOutcome};

/// Where to send the response of one in-flight request: the originating
/// connection's writer-thread channel and the id the client knows it by.
struct Route {
    resp_tx: mpsc::Sender<NetResponse>,
    client_id: u64,
}

/// State shared between the acceptor, the connection readers and the
/// worker-pool observer.
struct Shared {
    /// In-flight requests by server-assigned id.
    routes: Mutex<HashMap<u64, Route>>,
    /// One read-half clone per live connection, so shutdown can
    /// force-close sockets whose clients would otherwise hold the
    /// server open forever.
    conns: Mutex<Vec<TcpStream>>,
    shutting_down: AtomicBool,
}

/// Handles one client connection: decode frames, offer requests, honor
/// the shutdown control frame. Returns when the client disconnects, the
/// stream corrupts, or shutdown begins.
fn handle_connection(
    stream: TcpStream,
    ingress: &Ingress<'_>,
    shared: &Shared,
    local_addr: SocketAddr,
) {
    let (Ok(write_half), Ok(read_clone)) = (stream.try_clone(), stream.try_clone()) else {
        return;
    };
    // The writer thread owns the write half: responses (from whichever
    // worker executed the request) and control acks go through its
    // channel, so a stalled client blocks only this thread. Detached on
    // purpose — it drains until every route holding a sender is gone.
    // The ack is handshaked (`ack_done`): the shutdown handler must not
    // let the server exit — closing the socket — before the ack is on
    // the wire.
    let (resp_tx, resp_rx) = mpsc::channel::<NetResponse>();
    let (ack_tx, ack_rx) = mpsc::channel::<()>();
    let (ack_done_tx, ack_done_rx) = mpsc::channel::<()>();
    thread::spawn(move || {
        let mut write_half = write_half;
        loop {
            // Control acks first: a shutdown ack must not queue behind
            // a backlog of responses.
            let frame = if ack_rx.try_recv().is_ok() {
                Frame::ShutdownAck
            } else {
                match resp_rx.recv_timeout(std::time::Duration::from_millis(20)) {
                    Ok(resp) => Frame::Response(resp),
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => match ack_rx.recv() {
                        Ok(()) => Frame::ShutdownAck,
                        Err(_) => return, // connection fully released
                    },
                }
            };
            if frame == Frame::ShutdownAck {
                let _ = wire::write_frame(&mut write_half, &frame);
                let _ = ack_done_tx.send(());
                return;
            }
            if wire::write_frame(&mut write_half, &frame).is_err() {
                return; // client gone: drop this connection's responses
            }
        }
    });
    shared
        .conns
        .lock()
        .expect("connection registry poisoned")
        .push(read_clone);
    // Re-check after registering: either the shutdowner sees this
    // connection in the registry, or this load sees the flag — a
    // connection racing the shutdown frame cannot slip through and hold
    // the server open.
    if shared.shutting_down.load(Ordering::SeqCst) {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }

    let mut reader = BufReader::new(stream);
    loop {
        match wire::read_frame(&mut reader) {
            Ok(Some(Frame::Request(net_req))) => {
                let id = ingress.claim_id();
                shared.routes.lock().expect("routes poisoned").insert(
                    id,
                    Route {
                        resp_tx: resp_tx.clone(),
                        client_id: net_req.id,
                    },
                );
                let req = Request {
                    id,
                    arrival_ns: ingress.now_ns(),
                    op: net_req.op,
                    rng_seed: net_req.rng_seed,
                };
                if !ingress.offer(req) {
                    // Reject-on-full admission: answer immediately so the
                    // client's accounting stays complete.
                    shared.routes.lock().expect("routes poisoned").remove(&id);
                    let _ = resp_tx.send(NetResponse {
                        id: net_req.id,
                        outcome: WireOutcome::Rejected,
                        queue_ns: 0,
                        service_ns: 0,
                    });
                }
            }
            Ok(Some(Frame::Shutdown)) => {
                shared.shutting_down.store(true, Ordering::SeqCst);
                let _ = ack_tx.send(());
                // Wait until the ack is on the wire (Err = the writer
                // died earlier; nothing to wait for): the acceptor
                // unblocks next, and the server may exit right after.
                let _ = ack_done_rx.recv();
                // Force-close every registered connection (including this
                // one): readers blocked on idle clients see EOF and exit
                // instead of holding the server open.
                for conn in shared
                    .conns
                    .lock()
                    .expect("connection registry poisoned")
                    .iter()
                {
                    let _ = conn.shutdown(Shutdown::Read);
                }
                // Wake the acceptor out of its blocking accept.
                let _ = TcpStream::connect(local_addr);
                return;
            }
            // A client sending server-only frames is violating the
            // protocol; drop the connection. EOF and corrupt streams end
            // the connection the same way.
            Ok(Some(Frame::Response(_) | Frame::ShutdownAck)) | Ok(None) | Err(_) => return,
        }
    }
}

/// Serves STMBench7 over TCP until a client sends the shutdown control
/// frame: every decoded request flows through the service pool of
/// `cfg.workers` workers (schedule in `cfg` is ignored — arrivals come
/// off the wire), and the merged report carries the same
/// queue-wait/service-time decomposition an in-process run produces,
/// with `schedule` set to `net:<addr>`.
pub fn serve_net<B: Backend>(
    backend: &B,
    params: &StructureParams,
    cfg: &ServeConfig,
    listener: TcpListener,
) -> io::Result<ServeResult> {
    let local_addr = listener.local_addr()?;
    let shared = Shared {
        routes: Mutex::new(HashMap::new()),
        conns: Mutex::new(Vec::new()),
        shutting_down: AtomicBool::new(false),
    };

    let observe = |req: &Request, outcome: &OpOutcome, start_ns: u64, end_ns: u64| {
        let route = shared
            .routes
            .lock()
            .expect("routes poisoned")
            .remove(&req.id);
        if let Some(route) = route {
            // A vanished client is not a server error: its writer thread
            // is gone and the send just fails.
            let _ = route.resp_tx.send(NetResponse {
                id: route.client_id,
                outcome: WireOutcome::from(*outcome),
                queue_ns: start_ns.saturating_sub(req.arrival_ns),
                service_ns: end_ns.saturating_sub(start_ns),
            });
        }
    };

    let feed = |ingress: &Ingress<'_>| -> io::Result<()> {
        thread::scope(|scope| {
            loop {
                let (stream, _) = listener.accept()?;
                if shared.shutting_down.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client); stop
                    // accepting. Remaining readers were unblocked by the
                    // shutdown handler's socket close.
                    return Ok(());
                }
                let shared = &shared;
                scope.spawn(move || {
                    handle_connection(stream, ingress, shared, local_addr);
                });
            }
        })
    };

    let (mut result, fed) = serve_source(backend, params, cfg, feed, observe);
    fed?;
    if let Some(service) = result.report.service.as_mut() {
        service.schedule = format!("net:{local_addr}");
    }
    Ok(result)
}
