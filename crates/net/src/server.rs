//! The TCP front end: a single event-loop thread owns every connection
//! and feeds decoded requests into the `stmbench7-service` queue/worker
//! pool — so admission control, read-only batching and the latency
//! decomposition are exactly the in-process service's, with a wire in
//! front.
//!
//! Architecture (PR 7, replacing the PR 5 thread-per-connection server):
//! the calling thread runs an `epoll` readiness loop (`stmbench7-poll`)
//! over a nonblocking listener and all client sockets, so holding 10k
//! mostly-idle connections costs file descriptors, not threads — server
//! threads are the I/O loop plus the `cfg.workers` pool, regardless of
//! connection count. Per connection the loop keeps an incremental
//! [`FrameDecoder`] and a write buffer:
//!
//! - **Pipelining** — a client may have any number of requests in
//!   flight; responses are matched by request id on the client side, so
//!   completion order doesn't matter.
//! - **Backpressure, tied to admission** — when blocking admission finds
//!   the queue full, the connection's decoded-but-unoffered requests
//!   wait in its pending list and the loop *stops reading that socket*
//!   (TCP pushes back on the client); reject-on-full instead answers an
//!   explicit `Rejected` frame and keeps reading. A connection whose
//!   responses aren't draining (write buffer past the high-water mark)
//!   also stops being read until it drains below the low-water mark.
//! - **Responses** — the worker-pool observer posts each completed
//!   request to a shared outbox and wakes the poller via its wake token
//!   (an `eventfd`, replacing the PR 5 self-connect hack); the loop
//!   routes responses into per-connection write buffers by
//!   (slot, generation), so a response for a vanished connection is
//!   dropped, never sent to a reused slot.
//! - **Graceful shutdown** — a [`Frame::Shutdown`] frame stops the
//!   acceptor and begins draining: every request already on the wire
//!   (including pipelined ones on *other* connections, verified with a
//!   zero-timeout poll before completion) is executed and answered, then
//!   the ack is flushed and [`serve_net`] returns the merged
//!   [`ServeResult`]. An idle connection cannot hold the server open.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Mutex;
use std::time::Duration;

use stmbench7_backend::Backend;
use stmbench7_core::OpKind;
use stmbench7_data::{OpOutcome, StructureParams};
use stmbench7_obs::{EventKind, Layer, Recorder};
use stmbench7_poll::{Events, Interest, Poller, Token, Waker};
use stmbench7_service::{serve_source, Ingress, Offer, Request, ServeConfig, ServeResult};

use crate::wire::{self, Frame, FrameDecoder, NetResponse, WireOutcome};

const LISTENER: Token = Token(0);
/// The live-metrics listener (`--metrics`). Metrics tokens grow *down*
/// from the top of the token space (the waker owns `usize::MAX`), so
/// they can never collide with data-connection tokens growing up from
/// 1; `token.0 > usize::MAX / 2` is the dispatch divider.
const METRICS_LISTENER: Token = Token(usize::MAX - 1);
/// Read granularity; also bounds how many requests one readiness event
/// can decode before admission control gets a say.
const READ_CHUNK: usize = 16 * 1024;
/// A connection whose write buffer grows past this stops being read
/// (its responses aren't draining) …
const HIGH_WATER: usize = 256 * 1024;
/// … until it drains back below this.
const LOW_WATER: usize = 64 * 1024;
/// Poll cap while requests wait for queue space, as a safety net under
/// the observer wakes.
const RETRY_TIMEOUT: Duration = Duration::from_millis(10);

/// Where one in-flight request's response goes: connection slot +
/// generation (stale after the connection dies) and the client's id.
struct RouteEntry {
    slot: usize,
    gen: u64,
    client_id: u64,
}

/// Routes and completed-but-undelivered responses, under one lock so the
/// drain check ("no in-flight request anywhere") is atomic: a request is
/// always in `routes` or `outbox` until its response reaches a write
/// buffer.
#[derive(Default)]
struct RouteTable {
    routes: HashMap<u64, RouteEntry>,
    outbox: Vec<(usize, u64, NetResponse)>,
}

/// State shared between the event loop and the worker-pool observer.
struct Shared {
    table: Mutex<RouteTable>,
    waker: Waker,
}

/// A decoded request waiting for queue space (blocking admission found
/// the queue full).
#[derive(Clone, Copy)]
struct PendingReq {
    client_id: u64,
    op: OpKind,
    rng_seed: u64,
    arrival_ns: u64,
}

/// One client connection, owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Distinguishes this connection from earlier users of its slot.
    gen: u64,
    decoder: FrameDecoder,
    /// Encoded frames awaiting the socket; `out[sent..]` is unwritten.
    out: Vec<u8>,
    sent: usize,
    /// Decoded requests awaiting queue space, in arrival order.
    pending: VecDeque<PendingReq>,
    /// Interest currently registered with the poller.
    registered: Option<Interest>,
    /// Write-buffer backpressure latch (high/low-water hysteresis).
    read_paused: bool,
    /// This connection sent the shutdown frame and gets the ack.
    wants_ack: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Conn {
        Conn {
            stream,
            gen,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            sent: 0,
            pending: VecDeque::new(),
            registered: None,
            read_paused: false,
            wants_ack: false,
        }
    }

    fn backlog(&self) -> usize {
        self.out.len() - self.sent
    }

    fn desired_interest(&self) -> Option<Interest> {
        let read = self.pending.is_empty() && !self.read_paused;
        let write = self.backlog() > 0;
        match (read, write) {
            (true, true) => Some(Interest::BOTH),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None,
        }
    }
}

fn append_frame(out: &mut Vec<u8>, frame: &Frame) {
    let payload = wire::encode(frame);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
}

fn would_block(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::WouldBlock
}

fn interrupted(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Interrupted
}

fn metrics_token(slot: usize) -> Token {
    Token(usize::MAX - 2 - slot)
}

fn metrics_slot(token: Token) -> usize {
    usize::MAX - 2 - token.0
}

/// One metrics scraper connection: minimal HTTP/1.0, one request per
/// connection (`Connection: close`), body rendered at read time so the
/// scrape reflects that instant.
struct MetricsConn {
    stream: TcpStream,
    /// Request bytes until the blank line ends the header block.
    buf: Vec<u8>,
    /// Encoded response; `out[sent..]` is unwritten.
    out: Vec<u8>,
    sent: usize,
    /// The response has been generated; once flushed, close.
    responded: bool,
}

/// The event loop proper. Runs as the `serve_source` feed on the calling
/// thread; returning closes the queue and stops the workers.
struct EventLoop<'e, 'q> {
    poller: &'e Poller,
    listener: &'e TcpListener,
    ingress: &'e Ingress<'q>,
    shared: &'e Shared,
    /// Connection slab; `Token(slot + 1)` maps events back to slots.
    conns: Vec<Option<Conn>>,
    /// Per-slot generation, bumped on close so stale responses die.
    gens: Vec<u64>,
    free: Vec<usize>,
    /// Total decoded-but-unoffered requests across all connections.
    pending_total: usize,
    draining: bool,
    listener_registered: bool,
    recorder: Recorder,
    /// Live-metrics listener (`--metrics`), polled alongside the data
    /// listener but never holding a drain open.
    metrics_listener: Option<&'e TcpListener>,
    /// Metrics connection slab; `metrics_token(slot)` maps events back.
    mconns: Vec<Option<MetricsConn>>,
    mfree: Vec<usize>,
}

impl EventLoop<'_, '_> {
    fn run(mut self) -> io::Result<()> {
        let mut events = Events::with_capacity(1024);
        loop {
            self.deliver_responses();
            if self.pending_total > 0 {
                self.retry_pending();
            }
            if self.drain_ready() {
                // Bytes queued on a socket before the shutdown frame was
                // written are visible to a zero-timeout poll (level
                // triggered): only an empty one proves there is nothing
                // left to serve.
                let n = self.poll_once(&mut events, Some(Duration::ZERO))?;
                self.deliver_responses();
                if n == 0 && self.drain_ready() {
                    return self.send_acks(&mut events);
                }
                continue;
            }
            let timeout = if self.pending_total > 0 {
                Some(RETRY_TIMEOUT)
            } else {
                None
            };
            self.poll_once(&mut events, timeout)?;
        }
    }

    /// One poll plus event handling; returns the number of events.
    fn poll_once(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        self.poller.poll(events, timeout)?;
        for ev in events.iter() {
            let token = ev.token();
            if token == Poller::WAKE {
                continue; // outbox is drained at the top of the loop
            }
            if token == METRICS_LISTENER {
                self.accept_metrics();
                continue;
            }
            if token.0 > usize::MAX / 2 {
                self.handle_metrics(metrics_slot(token));
                continue;
            }
            if token == LISTENER {
                self.accept_ready()?;
                continue;
            }
            let slot = token.0 - 1;
            if ev.is_readable() {
                self.handle_readable(slot);
            } else if ev.is_writable() {
                self.flush_and_sync(slot);
            }
        }
        Ok(events.len())
    }

    /// Accepts until the listener would block.
    fn accept_ready(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining || stream.set_nonblocking(true).is_err() {
                        continue; // late connection: closed by drop
                    }
                    // Pipelined clients wait on responses; Nagle would
                    // stall each small response behind a delayed ACK.
                    let _ = stream.set_nodelay(true);
                    let slot = match self.free.pop() {
                        Some(slot) => {
                            // A freed slot being reused means a client
                            // already came and went here — the server-side
                            // proxy for a driver reconnect.
                            self.ingress.note_reconnect();
                            slot
                        }
                        None => {
                            self.conns.push(None);
                            self.gens.push(0);
                            self.conns.len() - 1
                        }
                    };
                    let mut conn = Conn::new(stream, self.gens[slot]);
                    if self
                        .poller
                        .register(conn.stream.as_raw_fd(), Token(slot + 1), Interest::READABLE)
                        .is_ok()
                    {
                        conn.registered = Some(Interest::READABLE);
                        self.conns[slot] = Some(conn);
                    } else {
                        self.free.push(slot);
                    }
                }
                Err(e) if would_block(&e) => return Ok(()),
                Err(e) if interrupted(&e) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Accepts metrics scrapers until the listener would block. Errors
    /// here never take the benchmark down — a scrape is best-effort.
    fn accept_metrics(&mut self) {
        let Some(listener) = self.metrics_listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let slot = self.mfree.pop().unwrap_or_else(|| {
                        self.mconns.push(None);
                        self.mconns.len() - 1
                    });
                    let conn = MetricsConn {
                        stream,
                        buf: Vec::new(),
                        out: Vec::new(),
                        sent: 0,
                        responded: false,
                    };
                    if self
                        .poller
                        .register(
                            conn.stream.as_raw_fd(),
                            metrics_token(slot),
                            Interest::READABLE,
                        )
                        .is_ok()
                    {
                        self.mconns[slot] = Some(conn);
                    } else {
                        self.mfree.push(slot);
                    }
                }
                Err(e) if interrupted(&e) => continue,
                Err(_) => return,
            }
        }
    }

    /// Drives one metrics connection: read until the header block ends,
    /// render the exposition at that instant, flush, close.
    fn handle_metrics(&mut self, slot: usize) {
        let Some(mut conn) = self.mconns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let mut buf = [0u8; READ_CHUNK];
        let mut dead = false;
        while !conn.responded {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&buf[..n]);
                    if conn.buf.windows(4).any(|w| w == b"\r\n\r\n")
                        || conn.buf.windows(2).any(|w| w == b"\n\n")
                    {
                        let body = self.ingress.metrics_text();
                        conn.out = format!(
                            "HTTP/1.0 200 OK\r\n\
                             Content-Type: text/plain; version=0.0.4\r\n\
                             Content-Length: {}\r\n\
                             Connection: close\r\n\r\n{body}",
                            body.len()
                        )
                        .into_bytes();
                        conn.responded = true;
                    } else if conn.buf.len() > READ_CHUNK {
                        dead = true; // never a real scrape request
                        break;
                    }
                }
                Err(e) if would_block(&e) => break,
                Err(e) if interrupted(&e) => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if !dead {
            while conn.sent < conn.out.len() {
                match conn.stream.write(&conn.out[conn.sent..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.sent += n,
                    Err(e) if would_block(&e) => break,
                    Err(e) if interrupted(&e) => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead || (conn.responded && conn.sent == conn.out.len()) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.mfree.push(slot);
            return;
        }
        // Response built but the socket is full: wait for writability.
        if conn.responded {
            let _ = self.poller.reregister(
                conn.stream.as_raw_fd(),
                metrics_token(slot),
                Interest::WRITABLE,
            );
        }
        self.mconns[slot] = Some(conn);
    }

    /// Reads a connection until it would block, is paused by admission /
    /// write backpressure, or dies.
    fn handle_readable(&mut self, slot: usize) {
        let Some(mut conn) = self.conns[slot].take() else {
            return;
        };
        let mut buf = [0u8; READ_CHUNK];
        let mut dead = false;
        loop {
            if !conn.pending.is_empty() || conn.read_paused {
                break;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    conn.decoder.extend(&buf[..n]);
                    if !self.process_frames(slot, &mut conn) {
                        dead = true; // protocol violation or corrupt stream
                        break;
                    }
                    if n < buf.len() {
                        break; // drained the socket (probably)
                    }
                }
                Err(e) if would_block(&e) => break,
                Err(e) if interrupted(&e) => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            self.close(slot, conn);
            return;
        }
        self.conns[slot] = Some(conn);
        self.flush_and_sync(slot);
    }

    /// Decodes every complete frame buffered on `conn` and dispatches.
    /// False = drop the connection.
    fn process_frames(&mut self, slot: usize, conn: &mut Conn) -> bool {
        loop {
            match conn.decoder.next_frame() {
                Ok(Some(Frame::Request(req))) => {
                    self.recorder
                        .instant(Layer::Net, EventKind::FrameDecode, "frame", req.id);
                    conn.pending.push_back(PendingReq {
                        client_id: req.id,
                        op: req.op,
                        rng_seed: req.rng_seed,
                        arrival_ns: self.ingress.now_ns(),
                    });
                    self.pending_total += 1;
                }
                Ok(Some(Frame::Shutdown)) => {
                    conn.wants_ack = true;
                    self.draining = true;
                    self.stop_accepting();
                }
                // Clients must not send server-only frames.
                Ok(Some(Frame::Response(_) | Frame::ShutdownAck)) => return false,
                Ok(None) => break,
                Err(_) => return false,
            }
        }
        self.dispatch(slot, conn);
        true
    }

    /// Offers this connection's pending requests in order until the
    /// queue saturates. The route is inserted *before* the offer: once a
    /// worker can see the request, its response has somewhere to go.
    fn dispatch(&mut self, slot: usize, conn: &mut Conn) {
        while let Some(&p) = conn.pending.front() {
            let id = self.ingress.claim_id();
            self.lock_table().routes.insert(
                id,
                RouteEntry {
                    slot,
                    gen: conn.gen,
                    client_id: p.client_id,
                },
            );
            let req = Request {
                id,
                arrival_ns: p.arrival_ns,
                op: p.op,
                rng_seed: p.rng_seed,
            };
            match self.ingress.offer_nonblocking(req) {
                Offer::Admitted => {
                    conn.pending.pop_front();
                    self.pending_total -= 1;
                }
                Offer::Rejected => {
                    // Reject-on-full answers immediately so the client's
                    // accounting stays complete.
                    self.lock_table().routes.remove(&id);
                    append_frame(
                        &mut conn.out,
                        &Frame::Response(NetResponse {
                            id: p.client_id,
                            outcome: WireOutcome::Rejected,
                            queue_ns: 0,
                            service_ns: 0,
                        }),
                    );
                    conn.pending.pop_front();
                    self.pending_total -= 1;
                }
                Offer::Saturated => {
                    self.lock_table().routes.remove(&id);
                    break; // intake pauses; retried on worker wakes
                }
            }
        }
    }

    /// Retries saturated connections once queue space may exist.
    fn retry_pending(&mut self) {
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            if conn.pending.is_empty() {
                self.conns[slot] = Some(conn);
                continue;
            }
            self.dispatch(slot, &mut conn);
            self.conns[slot] = Some(conn);
            self.flush_and_sync(slot);
        }
    }

    /// Moves completed responses from the shared outbox into their
    /// connections' write buffers (dropping responses whose connection
    /// died) and flushes.
    fn deliver_responses(&mut self) {
        let batch = std::mem::take(&mut self.lock_table().outbox);
        if batch.is_empty() {
            return;
        }
        let mut touched = Vec::new();
        for (slot, gen, resp) in batch {
            if self.gens.get(slot) == Some(&gen) {
                if let Some(conn) = self.conns[slot].as_mut() {
                    append_frame(&mut conn.out, &Frame::Response(resp));
                    if !touched.contains(&slot) {
                        touched.push(slot);
                    }
                }
            }
        }
        for slot in touched {
            self.flush_and_sync(slot);
        }
    }

    /// Writes a connection's buffer until done or blocked, updates the
    /// backpressure latch, and re-syncs its poller interest.
    fn flush_and_sync(&mut self, slot: usize) {
        let Some(mut conn) = self.conns[slot].take() else {
            return;
        };
        let had_backlog = conn.backlog() > 0;
        let flush_t0 = if had_backlog {
            self.recorder.now_ns()
        } else {
            0
        };
        let sent_before = conn.sent;
        let mut dead = false;
        while conn.sent < conn.out.len() {
            match conn.stream.write(&conn.out[conn.sent..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => conn.sent += n,
                Err(e) if would_block(&e) => break,
                Err(e) if interrupted(&e) => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if had_backlog && self.recorder.is_enabled() {
            let written = (conn.sent.saturating_sub(sent_before)) as u64;
            self.recorder
                .span(Layer::Net, EventKind::NetFlush, "flush", flush_t0, written);
        }
        if dead {
            self.close(slot, conn);
            return;
        }
        if conn.sent == conn.out.len() {
            conn.out.clear();
            conn.sent = 0;
        }
        if conn.backlog() >= HIGH_WATER {
            conn.read_paused = true;
        } else if conn.backlog() <= LOW_WATER {
            conn.read_paused = false;
        }
        self.sync_interest(slot, &mut conn);
        self.conns[slot] = Some(conn);
    }

    fn sync_interest(&self, slot: usize, conn: &mut Conn) {
        let desired = conn.desired_interest();
        if desired == conn.registered {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        let token = Token(slot + 1);
        let ok = match (conn.registered, desired) {
            (None, Some(i)) => self.poller.register(fd, token, i).is_ok(),
            (Some(_), Some(i)) => self.poller.reregister(fd, token, i).is_ok(),
            (Some(_), None) => self.poller.deregister(fd).is_ok(),
            (None, None) => true,
        };
        if ok {
            conn.registered = desired;
        }
    }

    /// Releases a connection: deregisters, bumps the slot generation (so
    /// in-flight responses die in the outbox), forgets its pendings.
    fn close(&mut self, slot: usize, conn: Conn) {
        if conn.registered.is_some() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        self.pending_total -= conn.pending.len();
        self.gens[slot] += 1;
        self.free.push(slot);
    }

    fn stop_accepting(&mut self) {
        if self.listener_registered {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.listener_registered = false;
        }
    }

    /// True once the drain is complete: shutdown requested, nothing
    /// pending, nothing in flight, nothing undelivered, every write
    /// buffer flushed.
    fn drain_ready(&mut self) -> bool {
        if !self.draining || self.pending_total > 0 {
            return false;
        }
        if self.conns.iter().flatten().any(|c| c.backlog() > 0) {
            return false;
        }
        let table = self.lock_table();
        table.routes.is_empty() && table.outbox.is_empty()
    }

    /// Queues the shutdown ack(s) and returns once they are on the wire
    /// (or their connections are gone).
    fn send_acks(mut self, events: &mut Events) -> io::Result<()> {
        for conn in self.conns.iter_mut().flatten() {
            if conn.wants_ack {
                append_frame(&mut conn.out, &Frame::ShutdownAck);
            }
        }
        loop {
            for slot in 0..self.conns.len() {
                if self.conns[slot].as_ref().is_some_and(|c| c.backlog() > 0) {
                    self.flush_and_sync(slot);
                }
            }
            if !self.conns.iter().flatten().any(|c| c.backlog() > 0) {
                return Ok(());
            }
            self.poll_once(events, Some(RETRY_TIMEOUT))?;
        }
    }

    fn lock_table(&self) -> std::sync::MutexGuard<'_, RouteTable> {
        self.shared.table.lock().expect("route table poisoned")
    }
}

/// Serves STMBench7 over TCP until a client sends the shutdown control
/// frame: every decoded request flows through the service pool of
/// `cfg.workers` workers (schedule in `cfg` is ignored — arrivals come
/// off the wire), and the merged report carries the same
/// queue-wait/service-time decomposition an in-process run produces,
/// with `schedule` set to `net:<addr>`.
///
/// The calling thread becomes the I/O event loop; total server threads
/// are `1 + cfg.workers` regardless of connection count.
///
/// `metrics`, when given, is a second listener the same event loop
/// serves: each accepted connection gets one Prometheus text exposition
/// of the flight recorder's live counters
/// ([`stmbench7_service::render_prometheus`]) and is closed — scrapeable
/// mid-run with any HTTP/1.0 client. Pair it with
/// `cfg.window_ms = Some(_)` so the recorder is actually on.
pub fn serve_net<B: Backend>(
    backend: &B,
    params: &StructureParams,
    cfg: &ServeConfig,
    listener: TcpListener,
    metrics: Option<TcpListener>,
) -> io::Result<ServeResult> {
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
    if let Some(m) = &metrics {
        m.set_nonblocking(true)?;
        poller.register(m.as_raw_fd(), METRICS_LISTENER, Interest::READABLE)?;
    }
    let shared = Shared {
        table: Mutex::new(RouteTable::default()),
        waker: poller.waker(),
    };

    let observe = |req: &Request, outcome: &OpOutcome, start_ns: u64, end_ns: u64| {
        let wake = {
            let mut table = shared.table.lock().expect("route table poisoned");
            match table.routes.remove(&req.id) {
                Some(route) => {
                    let wake = table.outbox.is_empty();
                    table.outbox.push((
                        route.slot,
                        route.gen,
                        NetResponse {
                            id: route.client_id,
                            outcome: WireOutcome::from(*outcome),
                            queue_ns: start_ns.saturating_sub(req.arrival_ns),
                            service_ns: end_ns.saturating_sub(start_ns),
                        },
                    ));
                    wake
                }
                None => false,
            }
        };
        if wake {
            let _ = shared.waker.wake();
        }
    };

    let feed = |ingress: &Ingress<'_>| -> io::Result<()> {
        EventLoop {
            poller: &poller,
            listener: &listener,
            ingress,
            shared: &shared,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            pending_total: 0,
            draining: false,
            listener_registered: true,
            recorder: cfg.recorder.clone(),
            metrics_listener: metrics.as_ref(),
            mconns: Vec::new(),
            mfree: Vec::new(),
        }
        .run()
    };

    let (mut result, fed) = serve_source(backend, params, cfg, feed, observe);
    fed?;
    if let Some(service) = result.report.service.as_mut() {
        service.schedule = format!("net:{local_addr}");
    }
    Ok(result)
}
