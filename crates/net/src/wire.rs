//! The STMBench7 wire protocol: versioned, length-prefixed binary
//! frames.
//!
//! Every frame on the wire is a 4-byte big-endian payload length followed
//! by the payload; every payload opens with the protocol version and a
//! frame tag. All multi-byte integers are big-endian. The encoding is
//! hand-rolled (the build is offline — no serde), mirrors the JSON
//! writer's philosophy, and is pinned by golden-bytes tests: a byte
//! change is a protocol change and must bump [`WIRE_VERSION`].
//!
//! ```text
//! frame     := len:u32 payload             (len = payload byte count)
//! payload   := version:u8 tag:u8 body
//! request   := tag 0x01  id:u64 op:u8 rng_seed:u64
//! response  := tag 0x02  id:u64 outcome queue_ns:u64 service_ns:u64
//! outcome   := 0x00 value:i64             (done)
//!            | 0x01 len:u16 reason:bytes  (benign failure)
//!            | 0x02                       (rejected by admission)
//! shutdown  := tag 0x03                   (client → server, graceful)
//! ack       := tag 0x04                   (server → client, then close)
//! ```
//!
//! Decoding is total: any byte sequence either yields a frame or a
//! [`WireError`] — never a panic — which the fuzz-ish proptest suite
//! pins down.

use std::io::{self, Read, Write};

use stmbench7_core::OpKind;
use stmbench7_data::OpOutcome;

/// Protocol version; bumped on any incompatible frame change.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a payload length. Real frames are tens of bytes; a
/// length prefix beyond this is a corrupt or hostile stream, rejected
/// before any allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024;

const TAG_REQUEST: u8 = 0x01;
const TAG_RESPONSE: u8 = 0x02;
const TAG_SHUTDOWN: u8 = 0x03;
const TAG_SHUTDOWN_ACK: u8 = 0x04;

const OUTCOME_DONE: u8 = 0x00;
const OUTCOME_FAIL: u8 = 0x01;
const OUTCOME_REJECTED: u8 = 0x02;

/// One operation request as it crosses the wire: the client-assigned
/// stream id, the operation, and the seed pinning the operation's random
/// choices — the same triple an in-process
/// [`stmbench7_service::Request`] carries, minus the arrival timestamp
/// (timing is measured on each side of the wire, never transmitted).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetRequest {
    pub id: u64,
    pub op: OpKind,
    pub rng_seed: u64,
}

/// An operation outcome as it crosses the wire. [`OpOutcome`] borrows
/// its failure reason from static benchmark strings; the wire cannot,
/// so responses carry the reason by value — and add the
/// admission-control rejection an in-process caller observes as a queue
/// error instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    Done(i64),
    Fail(String),
    /// Dropped by reject-on-full admission before execution.
    Rejected,
}

impl From<OpOutcome> for WireOutcome {
    fn from(outcome: OpOutcome) -> WireOutcome {
        match outcome {
            OpOutcome::Done(v) => WireOutcome::Done(v),
            OpOutcome::Fail(reason) => WireOutcome::Fail(reason.to_string()),
        }
    }
}

/// One response: the echoed request id, the outcome, and the
/// server-side latency decomposition (receive → execution start, and
/// execution start → completion) in nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetResponse {
    pub id: u64,
    pub outcome: WireOutcome,
    pub queue_ns: u64,
    pub service_ns: u64,
}

/// Every frame of the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    Request(NetRequest),
    Response(NetResponse),
    /// Graceful-shutdown control frame: the server stops accepting,
    /// drains its queue, acknowledges and exits.
    Shutdown,
    ShutdownAck,
}

/// Why a payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before its frame was complete.
    Truncated,
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame tag.
    BadTag(u8),
    /// Unknown outcome tag inside a response.
    BadOutcome(u8),
    /// Operation index beyond the 45 operations.
    BadOp(u8),
    /// A failure reason that is not UTF-8.
    BadUtf8,
    /// Bytes left over after a complete frame.
    TrailingBytes,
    /// Length prefix beyond [`MAX_FRAME_LEN`].
    Oversized(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            WireError::BadOutcome(t) => write!(f, "unknown outcome tag {t:#04x}"),
            WireError::BadOp(i) => write!(f, "operation index {i} out of range"),
            WireError::BadUtf8 => write!(f, "failure reason is not UTF-8"),
            WireError::TrailingBytes => write!(f, "trailing bytes after frame"),
            WireError::Oversized(n) => write!(f, "frame length {n} exceeds {MAX_FRAME_LEN}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// A cursor over a payload, every read bounds-checked.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// Encodes a frame as its payload bytes (without the length prefix).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut out = vec![WIRE_VERSION];
    match frame {
        Frame::Request(req) => {
            out.push(TAG_REQUEST);
            out.extend_from_slice(&req.id.to_be_bytes());
            out.push(req.op.index() as u8);
            out.extend_from_slice(&req.rng_seed.to_be_bytes());
        }
        Frame::Response(resp) => {
            out.push(TAG_RESPONSE);
            out.extend_from_slice(&resp.id.to_be_bytes());
            match &resp.outcome {
                WireOutcome::Done(v) => {
                    out.push(OUTCOME_DONE);
                    out.extend_from_slice(&v.to_be_bytes());
                }
                WireOutcome::Fail(reason) => {
                    out.push(OUTCOME_FAIL);
                    let bytes = reason.as_bytes();
                    let len = u16::try_from(bytes.len()).expect("failure reasons are short");
                    out.extend_from_slice(&len.to_be_bytes());
                    out.extend_from_slice(bytes);
                }
                WireOutcome::Rejected => out.push(OUTCOME_REJECTED),
            }
            out.extend_from_slice(&resp.queue_ns.to_be_bytes());
            out.extend_from_slice(&resp.service_ns.to_be_bytes());
        }
        Frame::Shutdown => out.push(TAG_SHUTDOWN),
        Frame::ShutdownAck => out.push(TAG_SHUTDOWN_ACK),
    }
    out
}

/// Decodes one payload into a frame. Total: every byte sequence yields a
/// frame or a [`WireError`], never a panic.
pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader {
        bytes: payload,
        at: 0,
    };
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let tag = r.u8()?;
    let frame = match tag {
        TAG_REQUEST => {
            let id = r.u64()?;
            let op_idx = r.u8()?;
            let op = OpKind::ALL
                .get(usize::from(op_idx))
                .copied()
                .ok_or(WireError::BadOp(op_idx))?;
            let rng_seed = r.u64()?;
            Frame::Request(NetRequest { id, op, rng_seed })
        }
        TAG_RESPONSE => {
            let id = r.u64()?;
            let outcome = match r.u8()? {
                OUTCOME_DONE => WireOutcome::Done(r.i64()?),
                OUTCOME_FAIL => {
                    let len = usize::from(r.u16()?);
                    let bytes = r.take(len)?;
                    WireOutcome::Fail(
                        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)?,
                    )
                }
                OUTCOME_REJECTED => WireOutcome::Rejected,
                other => return Err(WireError::BadOutcome(other)),
            };
            let queue_ns = r.u64()?;
            let service_ns = r.u64()?;
            Frame::Response(NetResponse {
                id,
                outcome,
                queue_ns,
                service_ns,
            })
        }
        TAG_SHUTDOWN => Frame::Shutdown,
        TAG_SHUTDOWN_ACK => Frame::ShutdownAck,
        other => return Err(WireError::BadTag(other)),
    };
    r.finish()?;
    Ok(frame)
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let payload = encode(frame);
    let len = u32::try_from(payload.len()).expect("payloads are tiny");
    debug_assert!(len <= MAX_FRAME_LEN);
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` on a clean end of stream
/// (EOF before any length byte); EOF *inside* the length prefix is a
/// torn frame and errors as `UnexpectedEof`; decode and framing errors
/// surface as `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    // The first byte distinguishes a graceful close from a peer dying
    // mid-prefix: `read_exact` reports both as UnexpectedEof.
    let mut first = [0u8; 1];
    match r.read(&mut first) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(e),
    }
    let mut rest = [0u8; 3];
    r.read_exact(&mut rest)?;
    let len = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len).into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(decode(&payload)?))
}

/// An incremental frame decoder for nonblocking sockets: accepts
/// arbitrary byte fragments via [`FrameDecoder::extend`] and yields
/// complete frames via [`FrameDecoder::next_frame`] as soon as their
/// bytes are all in. Splitting a stream at any byte boundary yields
/// exactly the frames of whole-buffer decoding (pinned by proptest).
///
/// Errors are terminal for the stream: the buffer is left as-is and the
/// owner is expected to drop the connection.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    at: usize,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends freshly-read bytes, compacting consumed ones first so the
    /// buffer never grows past the unconsumed tail plus one read.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.at > 0 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.at
    }

    /// The next complete frame, `Ok(None)` when more bytes are needed.
    /// The oversized check runs as soon as the 4 length bytes are in —
    /// before the payload arrives — like [`read_frame`]'s
    /// pre-allocation check.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.at..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(avail[..4].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized(len));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = decode(&avail[4..total])?;
        self.at += total;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_request_bytes() {
        // The exact on-wire payload of a known request is part of the
        // protocol: if these bytes change, WIRE_VERSION must change.
        let req = Frame::Request(NetRequest {
            id: 0x0102_0304_0506_0708,
            op: OpKind::T1, // index 0
            rng_seed: 0x1122_3344_5566_7788,
        });
        #[rustfmt::skip]
        let golden: Vec<u8> = vec![
            1,    // version
            0x01, // request tag
            0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, // id
            0x00, // op index (T1)
            0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, // rng seed
        ];
        assert_eq!(encode(&req), golden);
        assert_eq!(decode(&golden), Ok(req));
    }

    #[test]
    fn golden_response_bytes() {
        let resp = Frame::Response(NetResponse {
            id: 7,
            outcome: WireOutcome::Done(-2),
            queue_ns: 1_000,
            service_ns: 2_000,
        });
        #[rustfmt::skip]
        let golden: Vec<u8> = vec![
            1,    // version
            0x02, // response tag
            0, 0, 0, 0, 0, 0, 0, 7,  // id
            0x00, // done
            0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFE, // -2
            0, 0, 0, 0, 0, 0, 0x03, 0xE8, // queue 1000 ns
            0, 0, 0, 0, 0, 0, 0x07, 0xD0, // service 2000 ns
        ];
        assert_eq!(encode(&resp), golden);
        assert_eq!(decode(&golden), Ok(resp));
    }

    #[test]
    fn control_frames_round_trip_and_are_minimal() {
        assert_eq!(encode(&Frame::Shutdown), vec![1, 0x03]);
        assert_eq!(encode(&Frame::ShutdownAck), vec![1, 0x04]);
        assert_eq!(decode(&[1, 0x03]), Ok(Frame::Shutdown));
        assert_eq!(decode(&[1, 0x04]), Ok(Frame::ShutdownAck));
    }

    #[test]
    fn failure_and_rejection_outcomes_round_trip() {
        for outcome in [
            WireOutcome::Fail("atomic part id not found in index".into()),
            WireOutcome::Fail(String::new()),
            WireOutcome::Rejected,
            WireOutcome::Done(i64::MIN),
            WireOutcome::Done(i64::MAX),
        ] {
            let frame = Frame::Response(NetResponse {
                id: u64::MAX,
                outcome,
                queue_ns: u64::MAX,
                service_ns: 0,
            });
            assert_eq!(decode(&encode(&frame)), Ok(frame));
        }
    }

    #[test]
    fn every_op_kind_crosses_the_wire() {
        for &op in OpKind::ALL {
            let frame = Frame::Request(NetRequest {
                id: 3,
                op,
                rng_seed: 9,
            });
            assert_eq!(decode(&encode(&frame)), Ok(frame), "{}", op.name());
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert_eq!(decode(&[]), Err(WireError::Truncated));
        assert_eq!(decode(&[9, 0x01]), Err(WireError::BadVersion(9)));
        assert_eq!(decode(&[1]), Err(WireError::Truncated));
        assert_eq!(decode(&[1, 0x77]), Err(WireError::BadTag(0x77)));
        // A request cut off mid-id.
        assert_eq!(decode(&[1, 0x01, 0, 0]), Err(WireError::Truncated));
        // Operation index 45 is one past the table.
        let mut bad_op = encode(&Frame::Request(NetRequest {
            id: 0,
            op: OpKind::T1,
            rng_seed: 0,
        }));
        bad_op[10] = 45;
        assert_eq!(decode(&bad_op), Err(WireError::BadOp(45)));
        // Trailing garbage after a complete frame.
        let mut long = encode(&Frame::Shutdown);
        long.push(0);
        assert_eq!(decode(&long), Err(WireError::TrailingBytes));
        // A failure reason whose length prefix overruns the payload.
        let resp = [1, 0x02, 0, 0, 0, 0, 0, 0, 0, 1, 0x01, 0xFF, 0xFF];
        assert_eq!(decode(&resp), Err(WireError::Truncated));
        // A failure reason that is not UTF-8.
        let mut non_utf8 = vec![1, 0x02, 0, 0, 0, 0, 0, 0, 0, 1, 0x01, 0, 2, 0xC3, 0x28];
        non_utf8.extend_from_slice(&[0; 16]); // queue_ns + service_ns
        assert_eq!(decode(&non_utf8), Err(WireError::BadUtf8));
        // An unknown outcome tag.
        let mut bad_outcome = vec![1, 0x02, 0, 0, 0, 0, 0, 0, 0, 1, 0x09];
        bad_outcome.extend_from_slice(&[0; 16]);
        assert_eq!(decode(&bad_outcome), Err(WireError::BadOutcome(0x09)));
    }

    #[test]
    fn framed_io_round_trips_over_a_byte_stream() {
        let frames = vec![
            Frame::Request(NetRequest {
                id: 0,
                op: OpKind::Op9,
                rng_seed: 42,
            }),
            Frame::Response(NetResponse {
                id: 0,
                outcome: WireOutcome::Done(10),
                queue_ns: 5,
                service_ns: 6,
            }),
            Frame::Shutdown,
            Frame::ShutdownAck,
        ];
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&u32::MAX.to_be_bytes());
        stream.extend_from_slice(&[0; 8]);
        let err = read_frame(&mut std::io::Cursor::new(stream)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn truncated_stream_mid_frame_is_an_error_not_a_clean_eof() {
        let payload = encode(&Frame::Shutdown);
        let mut stream = Vec::new();
        stream.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        stream.push(payload[0]); // half the payload, then EOF
        let err = read_frame(&mut std::io::Cursor::new(stream)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn incremental_decoder_yields_frames_across_arbitrary_fragments() {
        let frames = vec![
            Frame::Request(NetRequest {
                id: 1,
                op: OpKind::T1,
                rng_seed: 2,
            }),
            Frame::Response(NetResponse {
                id: 1,
                outcome: WireOutcome::Fail("reason".into()),
                queue_ns: 3,
                service_ns: 4,
            }),
            Frame::Shutdown,
        ];
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        // One byte at a time: each frame must pop the instant its last
        // byte lands, never before.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            assert_eq!(dec.next_frame().unwrap(), None, "no frame before its bytes");
            dec.extend(&[b]);
            if let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.buffered(), 0);

        // Everything at once: all three pop back-to-back.
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        for f in &frames {
            assert_eq!(dec.next_frame().unwrap().as_ref(), Some(f));
        }
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn incremental_decoder_rejects_oversized_and_malformed_frames() {
        // Oversized length prefix errors before the payload arrives.
        let mut dec = FrameDecoder::new();
        dec.extend(&u32::MAX.to_be_bytes());
        assert_eq!(dec.next_frame(), Err(WireError::Oversized(u32::MAX)));

        // A malformed payload surfaces the decode error.
        let mut dec = FrameDecoder::new();
        dec.extend(&2u32.to_be_bytes());
        dec.extend(&[9, 0x01]);
        assert_eq!(dec.next_frame(), Err(WireError::BadVersion(9)));
    }

    #[test]
    fn truncated_length_prefix_is_an_error_not_a_clean_eof() {
        // A peer dying 1-3 bytes into the length prefix is a torn frame,
        // distinguishable from the clean close before any byte.
        for n in 1..4usize {
            let err = read_frame(&mut std::io::Cursor::new(vec![0u8; n])).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{n}-byte prefix");
        }
    }
}
