//! The remote-vs-local oracle: driving the identical request stream
//! in-process and over a loopback socket must produce identical
//! operation outcomes — the wire adds transport, never semantics.

use std::net::TcpListener;

use stmbench7_backend::{AnyBackend, Backend, BackendChoice};
use stmbench7_core::WorkloadType;
use stmbench7_data::{validate, StructureParams, Workspace};
use stmbench7_net::{drive, serve_net, shutdown, DriveConfig, WireOutcome};
use stmbench7_service::{run_stream_closed, Schedule, ServeConfig, ServeResult};

fn build(choice: BackendChoice) -> (StructureParams, AnyBackend) {
    let params = StructureParams::tiny();
    let ws = Workspace::build(params.clone(), 7);
    (params.clone(), AnyBackend::build(choice, ws))
}

/// Runs a loopback server for `backend` on an ephemeral port, drives it,
/// shuts it down, and returns both sides' results.
fn drive_loopback(
    backend: &AnyBackend,
    params: &StructureParams,
    server_cfg: &ServeConfig,
    drive_cfg: &DriveConfig,
    requests: &[stmbench7_service::Request],
) -> (stmbench7_net::DriveResult, ServeResult) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral loopback port");
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(move || serve_net(backend, params, server_cfg, listener, None));
        // Shut down before unwrapping: a failed drive must not leave the
        // scope joining a server blocked in accept().
        let client = drive(addr, drive_cfg, requests);
        let shutdown = shutdown(addr);
        let served = server
            .join()
            .expect("server thread panicked")
            .expect("server must exit cleanly");
        let client = client.expect("drive must succeed");
        shutdown.expect("graceful shutdown must be acknowledged");
        (client, served)
    })
}

#[test]
fn remote_drive_matches_the_local_sequential_oracle() {
    // One worker + one connection: stream order end to end, so the
    // sequential backend is deterministic and the oracle is exact.
    let drive_cfg = DriveConfig::new(
        Schedule::Open { rate: 500_000.0 },
        WorkloadType::ReadWrite,
        42,
    );
    let requests = drive_cfg.generate(400);

    let mut server_cfg =
        ServeConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 42);
    server_cfg.workers = 1;

    let (params, remote_backend) = build(BackendChoice::Sequential);
    let (client, served) =
        drive_loopback(&remote_backend, &params, &server_cfg, &drive_cfg, &requests);

    let (params, local_backend) = build(BackendChoice::Sequential);
    let local_cfg = ServeConfig::new(drive_cfg.schedule, WorkloadType::ReadWrite, 42);
    let local = run_stream_closed(&local_backend, &params, &local_cfg, &requests);

    // Outcome-for-outcome identity across the wire.
    assert_eq!(client.outcomes.len(), local.outcomes.len());
    for (i, (remote, in_process)) in client.outcomes.iter().zip(&local.outcomes).enumerate() {
        let in_process = in_process.expect("closed-loop run executes everything");
        assert_eq!(
            remote.as_ref(),
            Some(&WireOutcome::from(in_process)),
            "request {i} ({:?}) diverged between socket and in-process",
            requests[i].op
        );
    }
    // Both sides' per-op ledgers agree with the local run.
    for ((c, s), l) in client
        .report
        .per_op
        .iter()
        .zip(&served.report.per_op)
        .zip(&local.report.per_op)
    {
        assert_eq!(
            c.completed,
            l.completed,
            "{} client completions",
            c.op.name()
        );
        assert_eq!(
            s.completed,
            l.completed,
            "{} server completions",
            s.op.name()
        );
        assert_eq!(c.failed, l.failed, "{} client failures", c.op.name());
        assert_eq!(s.failed, l.failed, "{} server failures", s.op.name());
    }
    // And the structures themselves are identical in census.
    let census_remote = validate(&remote_backend.export()).expect("remote structure valid");
    let census_local = validate(&local_backend.export()).expect("local structure valid");
    assert_eq!(census_remote, census_local);

    // The client report carries all three lanes plus end-to-end.
    let svc = client
        .report
        .service
        .as_ref()
        .expect("client service stats");
    assert_eq!(svc.offered, 400);
    assert_eq!(svc.rejected, 0);
    assert_eq!(svc.queue_wait.samples(), 400, "client queue-wait lane");
    assert_eq!(svc.service_time.samples(), 400, "server service-time lane");
    assert_eq!(
        svc.network.as_ref().map(|h| h.samples()),
        Some(400),
        "network lane"
    );
    assert_eq!(svc.e2e.samples(), 400);
    // The server side reused the service pool: its own decomposition is
    // attached too, labeled as a net run.
    let server_svc = served
        .report
        .service
        .as_ref()
        .expect("server service stats");
    assert_eq!(server_svc.offered, 400);
    assert!(server_svc.schedule.starts_with("net:127.0.0.1"));
}

#[test]
fn pipelined_drive_matches_the_local_sequential_oracle() {
    // The pipelined variant of the oracle: an --inflight 8 window keeps
    // up to eight requests in flight on the single connection, but a
    // connection's requests are dispatched in arrival order and one
    // worker completes them in order — pipelining changes pacing, never
    // semantics.
    let mut drive_cfg = DriveConfig::new(
        Schedule::Open { rate: 500_000.0 },
        WorkloadType::ReadWrite,
        42,
    );
    drive_cfg.inflight = 8;
    let requests = drive_cfg.generate(400);

    let mut server_cfg =
        ServeConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 42);
    server_cfg.workers = 1;

    let (params, remote_backend) = build(BackendChoice::Sequential);
    let (client, served) =
        drive_loopback(&remote_backend, &params, &server_cfg, &drive_cfg, &requests);

    let (params, local_backend) = build(BackendChoice::Sequential);
    let local_cfg = ServeConfig::new(drive_cfg.schedule, WorkloadType::ReadWrite, 42);
    let local = run_stream_closed(&local_backend, &params, &local_cfg, &requests);

    assert_eq!(client.outcomes.len(), local.outcomes.len());
    for (i, (remote, in_process)) in client.outcomes.iter().zip(&local.outcomes).enumerate() {
        let in_process = in_process.expect("closed-loop run executes everything");
        assert_eq!(
            remote.as_ref(),
            Some(&WireOutcome::from(in_process)),
            "request {i} ({:?}) diverged under pipelining",
            requests[i].op
        );
    }
    let census_remote = validate(&remote_backend.export()).expect("remote structure valid");
    let census_local = validate(&local_backend.export()).expect("local structure valid");
    assert_eq!(census_remote, census_local);

    let svc = client
        .report
        .service
        .as_ref()
        .expect("client service stats");
    assert_eq!(svc.offered, 400);
    assert_eq!(svc.reconnects, 0, "a healthy loopback drive never retries");
    assert_eq!(svc.e2e.samples(), 400);
    assert_eq!(served.report.total_started(), 400);
}

#[test]
fn multi_connection_drive_accounts_for_every_request() {
    // Four connections and two workers: order is no longer deterministic
    // (so no outcome oracle), but nothing may be lost, every lane must
    // account for every request, and the structure must stay valid.
    let mut drive_cfg = DriveConfig::new(
        Schedule::Bursty {
            rate: 400_000.0,
            burst: 32,
            period_ms: 1,
        },
        WorkloadType::ReadWrite,
        11,
    );
    drive_cfg.connections = 4;
    let requests = drive_cfg.generate(600);

    let mut server_cfg =
        ServeConfig::new(Schedule::Closed { clients: 2 }, WorkloadType::ReadWrite, 11);
    server_cfg.workers = 2;

    let (params, backend) = build(BackendChoice::Coarse);
    let (client, served) = drive_loopback(&backend, &params, &server_cfg, &drive_cfg, &requests);

    assert!(
        client.outcomes.iter().all(Option::is_some),
        "every request answered"
    );
    assert_eq!(client.report.total_started(), 600);
    assert_eq!(served.report.total_started(), 600);
    let svc = client.report.service.as_ref().unwrap();
    let per_cat: u64 = svc
        .per_category
        .iter()
        .map(|c| c.queue_wait.samples())
        .sum();
    assert_eq!(per_cat, 600, "category split covers the whole stream");
    validate(&backend.export()).expect("structure intact after remote writes");
}

#[test]
fn idle_connection_does_not_hold_the_server_open() {
    // A client that connects and then goes silent must not keep the
    // server alive past a shutdown frame: the shutdown handler
    // force-closes registered connections, so serve_net returns (this
    // test hangs if it regresses).
    let drive_cfg = DriveConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 5);
    let requests = drive_cfg.generate(50);
    let mut server_cfg =
        ServeConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 5);
    server_cfg.workers = 1;

    let (params, backend) = build(BackendChoice::Sequential);
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral loopback port");
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let backend = &backend;
        let params = &params;
        let server_cfg = &server_cfg;
        let server = scope.spawn(move || serve_net(backend, params, server_cfg, listener, None));
        let idle = std::net::TcpStream::connect(addr).expect("idle connection");
        let client = drive(addr, &drive_cfg, &requests).expect("drive alongside idle peer");
        shutdown(addr).expect("shutdown acknowledged with idle peer connected");
        let served = server
            .join()
            .expect("server thread panicked")
            .expect("server exits despite the idle connection");
        assert_eq!(served.report.total_started(), 50);
        assert_eq!(client.report.total_started(), 50);
        drop(idle);
    });
}

#[test]
fn reject_admission_crosses_the_wire() {
    // A 1-slot queue, one worker, and a burst of simultaneous arrivals:
    // the server must answer the overflow with explicit rejections, and
    // the client must account executed + rejected = offered.
    let mut drive_cfg =
        DriveConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 3);
    drive_cfg.connections = 2;
    let requests = drive_cfg.generate(200);

    let mut server_cfg =
        ServeConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 3);
    server_cfg.workers = 1;
    server_cfg.queue_cap = 1;
    server_cfg.admission = stmbench7_service::Admission::Reject;

    let (params, backend) = build(BackendChoice::Sequential);
    let (client, served) = drive_loopback(&backend, &params, &server_cfg, &drive_cfg, &requests);

    let svc = client.report.service.as_ref().unwrap();
    assert!(svc.rejected > 0, "a 1-slot queue must reject under burst");
    assert_eq!(
        client.report.total_started() + svc.rejected,
        200,
        "every request executed or rejected"
    );
    let n_rejected = client
        .outcomes
        .iter()
        .filter(|o| matches!(o, Some(WireOutcome::Rejected)))
        .count();
    assert_eq!(n_rejected as u64, svc.rejected);
    let server_svc = served.report.service.as_ref().unwrap();
    assert_eq!(server_svc.rejected, svc.rejected, "both ledgers agree");
}
