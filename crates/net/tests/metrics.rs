//! The live metrics endpoint: while `serve_net` is running with a
//! `--metrics` listener, any HTTP/1.0 client can scrape a Prometheus
//! text exposition of the flight recorder's counters — and scrapes are
//! served by the same event loop as the benchmark traffic, so they work
//! mid-run without extra threads.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use stmbench7_backend::{AnyBackend, BackendChoice};
use stmbench7_core::WorkloadType;
use stmbench7_data::{StructureParams, Workspace};
use stmbench7_net::{drive, serve_net, shutdown, DriveConfig};
use stmbench7_service::{Schedule, ServeConfig};

/// One full scrape: request, read to EOF, split off the header block.
/// Returns (status line, body).
fn scrape(addr: std::net::SocketAddr) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
        .expect("write scrape request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read full response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

fn counter_value(body: &str, name: &str) -> u64 {
    body.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} present in:\n{body}"))
}

#[test]
fn metrics_endpoint_scrapes_mid_run_and_ops_total_is_monotonic() {
    let params = StructureParams::tiny();
    let ws = Workspace::build(params.clone(), 7);
    let backend = AnyBackend::build(BackendChoice::Coarse, ws);

    let mut server_cfg =
        ServeConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 9);
    server_cfg.workers = 2;
    server_cfg.window_ms = Some(50);

    let drive_cfg = DriveConfig::new(
        Schedule::Open { rate: 500_000.0 },
        WorkloadType::ReadWrite,
        9,
    );
    let requests = drive_cfg.generate(300);

    let listener = TcpListener::bind("127.0.0.1:0").expect("data listener");
    let addr = listener.local_addr().unwrap();
    let metrics = TcpListener::bind("127.0.0.1:0").expect("metrics listener");
    let metrics_addr = metrics.local_addr().unwrap();

    // Scrape + drive inside the scope, but hold every assertion until
    // the server has been shut down and joined — a panic mid-scope
    // would otherwise hang the scope join on a server still serving.
    let (before, driven, after, served) = std::thread::scope(|scope| {
        let backend = &backend;
        let params = &params;
        let server_cfg = &server_cfg;
        let server =
            scope.spawn(move || serve_net(backend, params, server_cfg, listener, Some(metrics)));

        let before = scrape(metrics_addr);
        let driven = drive(addr, &drive_cfg, &requests).expect("drive succeeds");
        let after = scrape(metrics_addr);

        shutdown(addr).expect("graceful shutdown");
        let served = server
            .join()
            .expect("server thread panicked")
            .expect("server exits cleanly");
        (before, driven, after, served)
    });

    // First scrape (before any benchmark traffic): a well-formed
    // document with the families the spec gates on.
    assert_eq!(before.0, "HTTP/1.0 200 OK");
    assert!(before.1.contains("# TYPE stmbench7_ops_total counter"));
    assert!(before.1.contains("# TYPE stmbench7_queue_depth gauge"));
    assert!(before.1.contains("stmbench7_latency_us_bucket"));
    let ops_before = counter_value(&before.1, "stmbench7_ops_total");

    // Second scrape, taken after the client held all its responses but
    // while the server was still running: every response the client saw
    // is already counted (the worker publishes flight counters before
    // answering), so the counter is exact, not just monotonic.
    assert_eq!(driven.report.total_started(), 300);
    assert_eq!(after.0, "HTTP/1.0 200 OK");
    let ops_after = counter_value(&after.1, "stmbench7_ops_total");
    assert!(
        ops_after > ops_before,
        "ops_total must increase across scrapes ({ops_before} -> {ops_after})"
    );
    assert_eq!(ops_after, 300);
    assert_eq!(counter_value(&after.1, "stmbench7_latency_us_count"), 300);

    // The windowed run also attaches a timeseries to the report, and its
    // windows sum to the totals the scrape reported.
    let ts = served
        .report
        .timeseries
        .as_ref()
        .expect("windowed net run attaches a timeseries");
    assert_eq!(ts.window_ms, 50);
    let completed: u64 = ts.windows.iter().map(|w| w.completed).sum();
    assert_eq!(completed, 300);
}
