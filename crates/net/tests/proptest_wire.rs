//! Fuzz-ish wire-protocol properties: the decoder is total (arbitrary
//! byte soup yields `Err`, never a panic) and encode→decode is the
//! identity on every representable frame.

use proptest::prelude::*;
use stmbench7_core::OpKind;
use stmbench7_net::wire::{
    decode, encode, Frame, FrameDecoder, NetRequest, NetResponse, WireOutcome,
};

/// Builds a frame from generated integers so every variant and every
/// outcome shape is covered.
fn frame(kind: u8, id: u64, op_idx: u8, a: u64, b: u64, reason_len: u8) -> Frame {
    match kind % 6 {
        0 => Frame::Request(NetRequest {
            id,
            op: OpKind::ALL[usize::from(op_idx) % 45],
            rng_seed: a,
        }),
        1 => Frame::Response(NetResponse {
            id,
            outcome: WireOutcome::Done(a as i64),
            queue_ns: b,
            service_ns: a ^ b,
        }),
        2 => Frame::Response(NetResponse {
            id,
            // Reasons of every small length, including empty and
            // multi-byte UTF-8.
            outcome: WireOutcome::Fail("é".repeat(usize::from(reason_len) % 40)),
            queue_ns: b,
            service_ns: a,
        }),
        3 => Frame::Response(NetResponse {
            id,
            outcome: WireOutcome::Rejected,
            queue_ns: b,
            service_ns: a,
        }),
        4 => Frame::Shutdown,
        _ => Frame::ShutdownAck,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arbitrary byte prefixes never panic the decoder and never decode
    /// to a frame unless they are exactly an encoded frame.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Returning anything at all (Ok or Err) is the property; a
        // panic fails the test.
        let _ = decode(&bytes);
    }

    /// Truncating a valid frame at every prefix length yields `Err`,
    /// never a panic and never a bogus frame.
    #[test]
    fn truncated_valid_frames_are_errors(
        kind in 0u8..6, id in any::<u64>(), op_idx in any::<u8>(),
        a in any::<u64>(), b in any::<u64>(), reason_len in any::<u8>(),
    ) {
        let full = encode(&frame(kind, id, op_idx, a, b, reason_len));
        for cut in 0..full.len() {
            prop_assert!(decode(&full[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    /// Appending garbage to a valid frame is rejected: frames are
    /// self-delimiting only through the outer length prefix.
    #[test]
    fn padded_valid_frames_are_errors(
        kind in 0u8..6, id in any::<u64>(), op_idx in any::<u8>(),
        a in any::<u64>(), b in any::<u64>(), pad in 1usize..8,
    ) {
        let mut bytes = encode(&frame(kind, id, op_idx, a, b, 3));
        bytes.extend(std::iter::repeat_n(0xAB, pad));
        prop_assert!(decode(&bytes).is_err());
    }

    /// encode → decode is the identity on every representable frame.
    #[test]
    fn encode_decode_is_identity(
        kind in 0u8..6, id in any::<u64>(), op_idx in any::<u8>(),
        a in any::<u64>(), b in any::<u64>(), reason_len in any::<u8>(),
    ) {
        let f = frame(kind, id, op_idx, a, b, reason_len);
        let decoded = decode(&encode(&f));
        prop_assert_eq!(decoded.as_ref(), Ok(&f));
    }

    /// Feeding a length-prefixed stream of frames to the incremental
    /// decoder in arbitrary fragment sizes yields exactly the frames a
    /// whole-buffer decode would, with nothing left buffered — TCP may
    /// split the stream anywhere, including inside a length prefix.
    #[test]
    fn incremental_decoding_is_identical_at_random_split_points(
        specs in proptest::collection::vec(
            (0u8..6, any::<u64>(), any::<u8>(), any::<u64>(), any::<u64>(), any::<u8>()),
            1..8,
        ),
        splits in proptest::collection::vec(1usize..16, 1..32),
    ) {
        let frames: Vec<Frame> = specs
            .iter()
            .map(|&(kind, id, op_idx, a, b, reason_len)| frame(kind, id, op_idx, a, b, reason_len))
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            let payload = encode(f);
            stream.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            stream.extend_from_slice(&payload);
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let mut at = 0;
        let mut turn = 0;
        while at < stream.len() {
            let end = (at + splits[turn % splits.len()]).min(stream.len());
            turn += 1;
            decoder.extend(&stream[at..end]);
            while let Some(f) = decoder.next_frame().expect("a valid stream never errors") {
                got.push(f);
            }
            at = end;
        }
        prop_assert_eq!(&got, &frames);
        prop_assert_eq!(decoder.buffered(), 0, "nothing may linger after a whole stream");
    }

    /// Flipping any single byte of a valid frame either fails to decode
    /// or decodes to a *different but well-formed* frame — never panics.
    #[test]
    fn single_byte_corruption_never_panics(
        kind in 0u8..6, id in any::<u64>(), op_idx in any::<u8>(),
        a in any::<u64>(), b in any::<u64>(), flip in any::<u8>(),
    ) {
        let clean = encode(&frame(kind, id, op_idx, a, b, 5));
        for pos in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= flip | 1; // guaranteed to change the byte
            let _ = decode(&corrupt);
        }
    }
}
