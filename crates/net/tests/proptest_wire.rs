//! Fuzz-ish wire-protocol properties: the decoder is total (arbitrary
//! byte soup yields `Err`, never a panic) and encode→decode is the
//! identity on every representable frame.

use proptest::prelude::*;
use stmbench7_core::OpKind;
use stmbench7_net::wire::{decode, encode, Frame, NetRequest, NetResponse, WireOutcome};

/// Builds a frame from generated integers so every variant and every
/// outcome shape is covered.
fn frame(kind: u8, id: u64, op_idx: u8, a: u64, b: u64, reason_len: u8) -> Frame {
    match kind % 6 {
        0 => Frame::Request(NetRequest {
            id,
            op: OpKind::ALL[usize::from(op_idx) % 45],
            rng_seed: a,
        }),
        1 => Frame::Response(NetResponse {
            id,
            outcome: WireOutcome::Done(a as i64),
            queue_ns: b,
            service_ns: a ^ b,
        }),
        2 => Frame::Response(NetResponse {
            id,
            // Reasons of every small length, including empty and
            // multi-byte UTF-8.
            outcome: WireOutcome::Fail("é".repeat(usize::from(reason_len) % 40)),
            queue_ns: b,
            service_ns: a,
        }),
        3 => Frame::Response(NetResponse {
            id,
            outcome: WireOutcome::Rejected,
            queue_ns: b,
            service_ns: a,
        }),
        4 => Frame::Shutdown,
        _ => Frame::ShutdownAck,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arbitrary byte prefixes never panic the decoder and never decode
    /// to a frame unless they are exactly an encoded frame.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Returning anything at all (Ok or Err) is the property; a
        // panic fails the test.
        let _ = decode(&bytes);
    }

    /// Truncating a valid frame at every prefix length yields `Err`,
    /// never a panic and never a bogus frame.
    #[test]
    fn truncated_valid_frames_are_errors(
        kind in 0u8..6, id in any::<u64>(), op_idx in any::<u8>(),
        a in any::<u64>(), b in any::<u64>(), reason_len in any::<u8>(),
    ) {
        let full = encode(&frame(kind, id, op_idx, a, b, reason_len));
        for cut in 0..full.len() {
            prop_assert!(decode(&full[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    /// Appending garbage to a valid frame is rejected: frames are
    /// self-delimiting only through the outer length prefix.
    #[test]
    fn padded_valid_frames_are_errors(
        kind in 0u8..6, id in any::<u64>(), op_idx in any::<u8>(),
        a in any::<u64>(), b in any::<u64>(), pad in 1usize..8,
    ) {
        let mut bytes = encode(&frame(kind, id, op_idx, a, b, 3));
        bytes.extend(std::iter::repeat_n(0xAB, pad));
        prop_assert!(decode(&bytes).is_err());
    }

    /// encode → decode is the identity on every representable frame.
    #[test]
    fn encode_decode_is_identity(
        kind in 0u8..6, id in any::<u64>(), op_idx in any::<u8>(),
        a in any::<u64>(), b in any::<u64>(), reason_len in any::<u8>(),
    ) {
        let f = frame(kind, id, op_idx, a, b, reason_len);
        let decoded = decode(&encode(&f));
        prop_assert_eq!(decoded.as_ref(), Ok(&f));
    }

    /// Flipping any single byte of a valid frame either fails to decode
    /// or decodes to a *different but well-formed* frame — never panics.
    #[test]
    fn single_byte_corruption_never_panics(
        kind in 0u8..6, id in any::<u64>(), op_idx in any::<u8>(),
        a in any::<u64>(), b in any::<u64>(), flip in any::<u8>(),
    ) {
        let clean = encode(&frame(kind, id, op_idx, a, b, 5));
        for pos in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= flip | 1; // guaranteed to change the byte
            let _ = decode(&corrupt);
        }
    }
}
