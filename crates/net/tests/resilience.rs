//! Transport-fault behavior: the driver survives a server that drops
//! connections mid-drive (reconnect + re-send, counted in the report),
//! and the event-loop server drains pipelined in-flight requests before
//! acknowledging a shutdown.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};

use stmbench7_backend::{AnyBackend, BackendChoice};
use stmbench7_core::{OpKind, WorkloadType};
use stmbench7_data::{StructureParams, Workspace};
use stmbench7_net::wire::{read_frame, write_frame};
use stmbench7_net::{drive, serve_net, DriveConfig, Frame, NetRequest, NetResponse, WireOutcome};
use stmbench7_service::{Schedule, ServeConfig};

/// A hand-rolled wire-speaking server that answers `flake_after`
/// requests on its first connection and then drops it abruptly; every
/// later connection is served faithfully until the client hangs up.
fn flaky_server(listener: TcpListener, flake_after: usize) -> std::io::Result<()> {
    let mut first = true;
    loop {
        let (stream, _) = listener.accept()?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut stream = stream;
        let mut served = 0usize;
        loop {
            let frame = match read_frame(&mut reader) {
                Ok(Some(f)) => f,
                // Client hung up: the drive is complete.
                Ok(None) => return Ok(()),
                Err(e) => return Err(e),
            };
            let Frame::Request(req) = frame else {
                return Ok(());
            };
            write_frame(
                &mut stream,
                &Frame::Response(NetResponse {
                    id: req.id,
                    outcome: WireOutcome::Done(0),
                    queue_ns: 1_000,
                    service_ns: 2_000,
                }),
            )?;
            served += 1;
            if first && served >= flake_after {
                // Drop the connection with requests likely still in
                // flight: the client must reconnect and re-send.
                drop(stream);
                drop(reader);
                first = false;
                break;
            }
        }
    }
}

#[test]
fn driver_reconnects_through_a_dropped_connection_and_counts_it() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral loopback port");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || flaky_server(listener, 1));

    let mut cfg = DriveConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 9);
    cfg.inflight = 4;
    let requests = cfg.generate(12);
    let result = drive(addr, &cfg, &requests).expect("drive survives the dropped connection");
    server
        .join()
        .expect("flaky server panicked")
        .expect("flaky server exits cleanly");

    assert!(
        result.outcomes.iter().all(Option::is_some),
        "every request answered despite the drop"
    );
    let svc = result.report.service.as_ref().expect("service stats");
    assert!(
        svc.reconnects >= 1,
        "the drop must be visible in the ledger, got {}",
        svc.reconnects
    );
    assert_eq!(svc.offered, 12);
    assert_eq!(svc.e2e.samples(), 12);
}

#[test]
fn unreachable_server_exhausts_the_reconnect_budget() {
    // Bind and immediately drop: nothing listens on the port, so every
    // connect is refused and the budget (not a hang) ends the drive.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral loopback port");
        listener.local_addr().unwrap()
    };
    let cfg = DriveConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 9);
    let requests = cfg.generate(4);
    assert!(
        drive(addr, &cfg, &requests).is_err(),
        "a dead server must surface as an error, not a hang"
    );
}

#[test]
fn shutdown_waits_for_pipelined_requests_on_other_connections() {
    // Connection B has eight pipelined requests in flight when
    // connection A asks for shutdown: the ack may only be written after
    // every one of B's responses — receiving the ack proves B's
    // responses are already on the wire.
    let params = StructureParams::tiny();
    let ws = Workspace::build(params.clone(), 7);
    let backend = AnyBackend::build(BackendChoice::Sequential, ws);
    let mut server_cfg =
        ServeConfig::new(Schedule::Closed { clients: 1 }, WorkloadType::ReadWrite, 7);
    server_cfg.workers = 1;

    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral loopback port");
    let addr = listener.local_addr().unwrap();
    let served = std::thread::scope(|scope| {
        let backend = &backend;
        let params = &params;
        let server_cfg = &server_cfg;
        let server = scope.spawn(move || serve_net(backend, params, server_cfg, listener, None));

        let mut b = TcpStream::connect(addr).expect("connection B");
        let mut b_reader = BufReader::new(b.try_clone().unwrap());
        for client_id in 0..8u64 {
            write_frame(
                &mut b,
                &Frame::Request(NetRequest {
                    id: client_id,
                    op: OpKind::ALL[client_id as usize % OpKind::ALL.len()],
                    rng_seed: client_id,
                }),
            )
            .expect("pipelined request");
        }
        // Wait for one response: the server has certainly started
        // reading B, and B's remaining requests sit in its buffers.
        let first = read_frame(&mut b_reader)
            .expect("read B's first response")
            .expect("B's first response");
        assert!(matches!(first, Frame::Response(_)));

        let mut a = TcpStream::connect(addr).expect("connection A");
        let mut a_reader = BufReader::new(a.try_clone().unwrap());
        write_frame(&mut a, &Frame::Shutdown).expect("shutdown frame");
        let ack = read_frame(&mut a_reader)
            .expect("read shutdown ack")
            .expect("shutdown ack");
        assert!(matches!(ack, Frame::ShutdownAck), "got {ack:?}");

        // The ack is in hand: the remaining seven responses must already
        // be readable, in B's request order.
        for expected_id in 1..8u64 {
            let frame = read_frame(&mut b_reader)
                .expect("read drained response")
                .expect("response drained before the ack");
            let Frame::Response(resp) = frame else {
                panic!("non-response on B after the ack: {frame:?}");
            };
            assert_eq!(resp.id, expected_id, "responses keep B's request order");
        }

        server
            .join()
            .expect("server thread panicked")
            .expect("server exits cleanly")
    });
    let svc = served
        .report
        .service
        .as_ref()
        .expect("server service stats");
    assert_eq!(svc.offered, 8, "all of B's pipelined requests executed");
    assert_eq!(served.report.total_started(), 8);
}
