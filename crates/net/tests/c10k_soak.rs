//! The idle-connection soak: thousands of registered, silent
//! connections held on the event loop for minutes while a hot pipelined
//! subset keeps working. Ignored by default — nightly CI runs it with
//! `C10K_SOAK_SECS=180 cargo test --release -p stmbench7-net --test
//! c10k_soak -- --ignored --nocapture`.

use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use stmbench7_backend::{AnyBackend, BackendChoice};
use stmbench7_core::WorkloadType;
use stmbench7_data::{StructureParams, Workspace};
use stmbench7_net::{drive, serve_net, shutdown, DriveConfig};
use stmbench7_service::{Schedule, ServeConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// This process's resident set, in kilobytes, from `/proc/self/status`
/// (the server and the herd live in this process, so it covers both
/// ends of every connection).
fn vm_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse().ok())
        .expect("VmRSS line")
}

#[test]
#[ignore = "multi-minute soak; opt in via --ignored (see module doc)"]
fn idle_herd_survives_a_soak_with_zero_drops_and_bounded_rss() {
    let soak_secs = env_u64("C10K_SOAK_SECS", 30);
    let herd = env_u64("C10K_SOAK_CONNS", 5_000) as usize;
    // Both ends of every loopback connection are fds in this process.
    stmbench7_poll::raise_nofile_limit((herd * 2 + 1024) as u64).expect("raise RLIMIT_NOFILE");

    let params = StructureParams::tiny();
    let ws = Workspace::build(params.clone(), 7);
    let backend = AnyBackend::build(BackendChoice::Medium, ws);
    let mut server_cfg =
        ServeConfig::new(Schedule::Closed { clients: 2 }, WorkloadType::ReadWrite, 7);
    server_cfg.workers = 2;

    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral loopback port");
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let backend = &backend;
        let params = &params;
        let server_cfg = &server_cfg;
        let server = scope.spawn(move || serve_net(backend, params, server_cfg, listener, None));

        let idle: Vec<TcpStream> = (0..herd)
            .map(|_| TcpStream::connect(addr).expect("idle connection"))
            .collect();
        println!("herd of {herd} idle connections established");

        let mut cfg = DriveConfig::new(
            Schedule::Open { rate: 20_000.0 },
            WorkloadType::ReadWrite,
            11,
        );
        cfg.connections = 4;
        cfg.inflight = 8;

        // First burst warms allocator pools (slab, buffers, histograms)
        // before the RSS baseline is taken.
        let requests = cfg.generate(500);
        let warm = drive(addr, &cfg, &requests).expect("warmup burst");
        assert!(warm.outcomes.iter().all(Option::is_some));
        let rss_start = vm_rss_kb();

        let deadline = Instant::now() + Duration::from_secs(soak_secs);
        let mut bursts = 0u64;
        let mut seed = 12u64;
        while Instant::now() < deadline {
            let mut cfg = cfg.clone();
            cfg.seed = seed;
            seed += 1;
            let requests = cfg.generate(500);
            let result = drive(addr, &cfg, &requests).expect("soak burst");
            assert!(
                result.outcomes.iter().all(Option::is_some),
                "burst {bursts}: dropped frames alongside the idle herd"
            );
            let svc = result.report.service.as_ref().expect("service stats");
            assert_eq!(
                svc.reconnects, 0,
                "burst {bursts}: the loopback soak must not lose connections"
            );
            bursts += 1;
            std::thread::sleep(Duration::from_millis(500));
        }
        let rss_end = vm_rss_kb();
        println!("{bursts} bursts over {soak_secs}s, RSS {rss_start} -> {rss_end} kB");
        assert!(bursts >= 1, "the soak must have done work");
        // Bounded residency: the loop may warm buffers a little, but a
        // herd held for minutes must not grow the process materially.
        assert!(
            rss_end <= rss_start + 64 * 1024,
            "RSS grew by {} kB over the soak",
            rss_end - rss_start
        );

        drop(idle);
        shutdown(addr).expect("graceful shutdown after the soak");
        server
            .join()
            .expect("server thread panicked")
            .expect("server exits cleanly");
    });
}
