//! Concurrent integrity: hammer every backend with a multi-threaded
//! write-dominated workload (structure modifications included) and check
//! that the structure afterwards still satisfies every invariant.

use std::time::Duration;

use stmbench7::backend::Backend;
use stmbench7::core::{run_benchmark, BenchConfig, OpFilter, RunMode, WorkloadType};
use stmbench7::data::{validate, StructureParams, Workspace};
use stmbench7::{AnyBackend, BackendChoice};
use stmbench7_stm::ContentionManager;

fn hammer(choice: BackendChoice, name: &str) {
    hammer_for(choice, name, Duration::from_millis(400));
}

fn hammer_for(choice: BackendChoice, name: &str, duration: Duration) {
    let params = StructureParams::tiny();
    let ws = Workspace::build(params.clone(), 7);
    let backend = AnyBackend::build(choice, ws);
    let cfg = BenchConfig {
        threads: 4,
        mode: RunMode::Timed(duration),
        workload: WorkloadType::WriteDominated,
        long_traversals: true,
        structure_mods: true,
        filter: OpFilter::none(),
        seed: 1234,
        histograms: false,
        recorder: stmbench7::obs::Recorder::default(),

        window_ms: None,
    };
    let report = run_benchmark(&backend, &params, &cfg);
    assert!(report.total_started() > 0, "{name}: nothing ran");
    let census = validate(&backend.export())
        .unwrap_or_else(|e| panic!("{name}: structure corrupted after concurrent run: {e}"));
    assert!(census.atomic_parts > 0);
    if let Some(stm) = backend.stm_stats() {
        assert_eq!(
            stm.commits,
            // Every started operation (completed or benignly failed)
            // commits exactly one transaction.
            report.total_started(),
            "{name}: commits must equal started operations"
        );
    }
}

#[test]
fn coarse_concurrent_integrity() {
    hammer(BackendChoice::Coarse, "coarse");
}

#[test]
fn medium_concurrent_integrity() {
    hammer(BackendChoice::Medium, "medium");
}

#[test]
fn fine_concurrent_integrity() {
    hammer(BackendChoice::Fine, "fine");
}

#[test]
fn flatcomb_concurrent_integrity() {
    hammer(BackendChoice::FlatCombining, "flatcomb");
}

#[test]
fn rcl_concurrent_integrity() {
    hammer(BackendChoice::DedicatedServer, "rcl");
}

/// Delegation-specific integrity: hammer both combining backends with
/// the write-dominated mix and check the combiner ledger afterwards —
/// every started operation was executed by some combiner, exactly once
/// (lost or doubly-executed publications would show up as a count
/// mismatch long before they corrupted the structure).
#[test]
fn combining_backends_lose_no_operation_under_contention() {
    for choice in [BackendChoice::FlatCombining, BackendChoice::DedicatedServer] {
        let params = StructureParams::tiny();
        let ws = Workspace::build(params.clone(), 7);
        let backend = AnyBackend::build(choice, ws);
        let cfg = BenchConfig {
            threads: 4,
            mode: RunMode::Timed(Duration::from_millis(300)),
            workload: WorkloadType::WriteDominated,
            long_traversals: true,
            structure_mods: true,
            filter: OpFilter::none(),
            seed: 99,
            histograms: false,
            recorder: stmbench7::obs::Recorder::default(),

            window_ms: None,
        };
        let report = run_benchmark(&backend, &params, &cfg);
        let stats = backend.combining_stats().expect("delegation backend");
        assert_eq!(
            stats.combined,
            report.total_started(),
            "{}: every started operation is combined exactly once",
            backend.name()
        );
        assert!(stats.combines >= 1 && stats.combines <= stats.combined);
        validate(&backend.export())
            .unwrap_or_else(|e| panic!("{}: structure corrupted: {e}", backend.name()));
    }
}

/// The combiner role must survive changing hands mid-run. Phase 1
/// hammers from one thread pool (the combiner emerges there), phase 2
/// hammers the *same* backend from a fresh pool — different OS threads,
/// so the role provably moves — and a concurrent 4-thread phase in
/// between exercises contended hand-offs. The structure must stay valid
/// across all of it.
#[test]
fn flatcomb_combiner_handoff_mid_run() {
    let params = StructureParams::tiny();
    let ws = Workspace::build(params.clone(), 7);
    let backend = AnyBackend::build(BackendChoice::FlatCombining, ws);
    let mut total = 0u64;
    for (phase, threads) in [(0u64, 1usize), (1, 4), (2, 1)] {
        let cfg = BenchConfig {
            threads,
            mode: RunMode::Timed(Duration::from_millis(150)),
            workload: WorkloadType::WriteDominated,
            long_traversals: true,
            structure_mods: true,
            filter: OpFilter::none(),
            seed: 4321 + phase,
            histograms: false,
            recorder: stmbench7::obs::Recorder::default(),

            window_ms: None,
        };
        // run_benchmark spawns fresh worker threads per call, so each
        // phase's combiner is a different OS thread from the last one's.
        total += run_benchmark(&backend, &params, &cfg).total_started();
    }
    let stats = backend.combining_stats().expect("delegation backend");
    assert_eq!(stats.combined, total, "no operation lost across hand-offs");
    assert!(
        stats.handoffs >= 3,
        "the combiner role must change hands between phases: {} hand-offs",
        stats.handoffs
    );
    validate(&backend.export()).expect("structure intact after combiner hand-offs");
}

#[test]
fn astm_concurrent_integrity() {
    use stmbench7::backend::Granularity;
    hammer(
        BackendChoice::Astm {
            granularity: Granularity::Monolithic,
            cm: ContentionManager::Polka,
            visible: false,
        },
        "astm",
    );
}

#[test]
fn astm_sharded_aggressive_cm_integrity() {
    use stmbench7::backend::Granularity;
    hammer(
        BackendChoice::Astm {
            granularity: Granularity::Sharded,
            cm: ContentionManager::Aggressive,
            visible: false,
        },
        "astm-sharded/aggressive",
    );
}

#[test]
fn astm_visible_reads_integrity() {
    use stmbench7::backend::Granularity;
    hammer(
        BackendChoice::Astm {
            granularity: Granularity::Monolithic,
            cm: ContentionManager::Polka,
            visible: true,
        },
        "astm-visible",
    );
}

#[test]
fn tl2_concurrent_integrity() {
    use stmbench7::backend::Granularity;
    hammer(
        BackendChoice::Tl2 {
            granularity: Granularity::Monolithic,
        },
        "tl2",
    );
}

#[test]
fn tl2_sharded_concurrent_integrity() {
    use stmbench7::backend::Granularity;
    hammer(
        BackendChoice::Tl2 {
            granularity: Granularity::Sharded,
        },
        "tl2-sharded",
    );
}

#[test]
fn norec_concurrent_integrity() {
    use stmbench7::backend::Granularity;
    hammer(
        BackendChoice::Norec {
            granularity: Granularity::Monolithic,
        },
        "norec",
    );
}

#[test]
fn norec_sharded_concurrent_integrity() {
    use stmbench7::backend::Granularity;
    hammer(
        BackendChoice::Norec {
            granularity: Granularity::Sharded,
        },
        "norec-sharded",
    );
}

/// Builds the full paper-scale structure (§2.2: 500 graphs × 100 000
/// atomic parts — the "more than 50 millions of objects" of §5) at 16
/// index shards and runs the structure validator over it. Needs several
/// GiB of memory and minutes of wall clock, so it is excluded from the
/// default suite and exercised by the nightly workflow alongside the
/// soak below.
#[test]
#[ignore = "paper-scale build; minutes + GiB — run explicitly or nightly"]
fn paper_full_builds_and_validates() {
    use stmbench7::data::{validate, StructureParams, Workspace};
    let params = StructureParams::paper_full().with_shards(16);
    let ws = Workspace::build(params.clone(), 1);
    let census = validate(&ws).expect("paper_full structure must validate");
    assert_eq!(census.atomic_parts, params.initial_atomics());
    assert_eq!(census.base_assemblies, params.initial_bases());
    assert_eq!(census.composite_parts, params.library_size);
    assert_eq!(ws.atomics.by_id.shard_count(), 16);
    assert_eq!(ws.atomics.by_date.len(), census.atomic_parts);
}

/// Long soak over every backend — minutes, not milliseconds — for
/// chasing rare interleavings. Excluded from the default suite; run it
/// with `cargo test --test concurrent_integrity -- --ignored` (optionally
/// `SOAK_SECS=N` to change the per-backend duration, default 20s).
#[test]
#[ignore = "long soak; run explicitly with -- --ignored"]
fn long_soak_all_backends() {
    let secs: u64 = std::env::var("SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let duration = Duration::from_secs(secs);
    for (name, choice) in stmbench7::strategy_catalog() {
        if choice == BackendChoice::Sequential {
            continue; // one thread at a time by construction — nothing to soak
        }
        eprintln!("soaking {name} for {secs}s…");
        hammer_for(choice, name, duration);
    }
}
