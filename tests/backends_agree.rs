//! Cross-backend equivalence and integrity.
//!
//! With one thread and a fixed seed, every backend executes the exact same
//! operation sequence with the exact same random choices — so every
//! synchronization strategy must produce identical per-operation
//! outcome counts and identical final structures. This is the strongest
//! end-to-end correctness check in the suite: it exercises all 45
//! operations over every `Sb7Tx` implementation at once (for the
//! fine-grained strategy that includes discovery, execution and the
//! exclusive path).

use stmbench7::backend::Backend;
use stmbench7::core::{run_benchmark, BenchConfig, WorkloadType};
use stmbench7::data::{validate, StructureParams, Workspace};
use stmbench7::{strategy_catalog, AnyBackend, BackendChoice};

fn all_choices() -> Vec<(&'static str, BackendChoice)> {
    strategy_catalog()
}

/// The reference profile of one run: backend name, per-op (completed,
/// failed) counts, and the final structure census.
type Profile = (String, Vec<(u64, u64)>, stmbench7::data::Census);

/// Runs the same deterministic workload on every backend and compares.
/// `shards` exercises the sharded-index axis: routing and per-shard
/// locking must never change a single outcome.
fn check_equivalence(workload: WorkloadType, ops: u64, seed: u64, shards: usize) {
    let params = StructureParams::tiny().with_shards(shards);
    let cfg = BenchConfig::deterministic(workload, ops, seed);

    let mut reference: Option<Profile> = None;
    for (name, choice) in all_choices() {
        let ws = Workspace::build(params.clone(), 99);
        let backend = AnyBackend::build(choice, ws);
        let report = run_benchmark(&backend, &params, &cfg);
        let counts: Vec<(u64, u64)> = report
            .per_op
            .iter()
            .map(|o| (o.completed, o.failed))
            .collect();
        let exported = backend.export();
        let census = validate(&exported)
            .unwrap_or_else(|e| panic!("{name}: structure corrupted after run: {e}"));
        match &reference {
            None => reference = Some((name.to_string(), counts, census)),
            Some((ref_name, ref_counts, ref_census)) => {
                assert_eq!(
                    &counts, ref_counts,
                    "{name} and {ref_name} disagree on per-op outcomes"
                );
                assert_eq!(
                    &census, ref_census,
                    "{name} and {ref_name} disagree on the final census"
                );
            }
        }
    }
}

#[test]
fn backends_agree_read_dominated() {
    check_equivalence(WorkloadType::ReadDominated, 400, 11, 1);
}

#[test]
fn backends_agree_read_write() {
    check_equivalence(WorkloadType::ReadWrite, 400, 22, 1);
}

#[test]
fn backends_agree_write_dominated() {
    check_equivalence(WorkloadType::WriteDominated, 400, 33, 1);
}

#[test]
fn backends_agree_read_write_sharded_8() {
    check_equivalence(WorkloadType::ReadWrite, 400, 22, 8);
}

#[test]
fn backends_agree_write_dominated_sharded_8() {
    check_equivalence(WorkloadType::WriteDominated, 400, 33, 8);
}
