//! Property tests over the whole benchmark: arbitrary operation
//! sequences, from arbitrary seeds, must never corrupt the structure and
//! must behave identically across backends.

use proptest::prelude::*;

use stmbench7::core::ops::{run_op, OpCtx, OpKind};
use stmbench7::data::{validate, DirectTx, OpOutcome, StructureParams, Workspace};

fn arb_op() -> impl Strategy<Value = OpKind> {
    (0..OpKind::ALL.len()).prop_map(|i| OpKind::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // Each case runs a full op sequence with validation.
        ..ProptestConfig::default()
    })]

    /// Any sequence of operations leaves a structurally valid workspace.
    #[test]
    fn random_sequences_preserve_invariants(
        ops in proptest::collection::vec(arb_op(), 1..60),
        seed in 0u64..1_000_000,
        build_seed in 0u64..1_000,
    ) {
        let params = StructureParams::tiny();
        let mut ws = Workspace::build(params.clone(), build_seed);
        for (i, op) in ops.iter().enumerate() {
            let mut ctx = OpCtx::new(params.clone(), seed.wrapping_add(i as u64));
            let mut tx = DirectTx::writing(&mut ws);
            let outcome = run_op(*op, &mut tx, &mut ctx).expect("direct runs cannot abort");
            // Both outcomes are legal; corruption is not.
            let _ = outcome;
        }
        validate(&ws).map_err(|e| TestCaseError::fail(format!("invariant broken: {e}")))?;
    }

    /// Operation return values are deterministic in (structure seed,
    /// op seed) — the contract the cross-backend tests rely on.
    #[test]
    fn operations_are_deterministic(
        op in arb_op(),
        seed in 0u64..1_000_000,
    ) {
        let params = StructureParams::tiny();
        let run = || {
            let mut ws = Workspace::build(params.clone(), 5);
            let mut ctx = OpCtx::new(params.clone(), seed);
            let mut tx = DirectTx::writing(&mut ws);
            run_op(op, &mut tx, &mut ctx).unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// Read-only operations must not change the structure at all.
    #[test]
    fn read_only_ops_do_not_mutate(
        op in arb_op().prop_filter("read-only", |o| o.is_read_only()),
        seed in 0u64..1_000_000,
    ) {
        let params = StructureParams::tiny();
        let mut ws = Workspace::build(params.clone(), 5);
        let census_before = validate(&ws).unwrap();
        let manual_before = ws.manual.text.clone();
        let part_before = ws.atomics.store.get(1).cloned();
        let mut ctx = OpCtx::new(params.clone(), seed);
        let mut tx = DirectTx::writing(&mut ws);
        let _ = run_op(op, &mut tx, &mut ctx).unwrap();
        prop_assert_eq!(validate(&ws).unwrap(), census_before);
        prop_assert_eq!(ws.manual.text, manual_before);
        prop_assert_eq!(ws.atomics.store.get(1).cloned(), part_before);
    }

    /// Benign failures must also leave the structure untouched (the
    /// "check capacity before creating anything" rule for SM ops).
    #[test]
    fn failed_ops_leave_no_trace(
        op in arb_op(),
        seed in 0u64..1_000_000,
    ) {
        let params = StructureParams::tiny();
        let mut ws = Workspace::build(params.clone(), 5);
        let census_before = validate(&ws).unwrap();
        let mut ctx = OpCtx::new(params.clone(), seed);
        let mut tx = DirectTx::writing(&mut ws);
        if let OpOutcome::Fail(_) = run_op(op, &mut tx, &mut ctx).unwrap() {
            prop_assert_eq!(validate(&ws).unwrap(), census_before);
        }
    }
}
