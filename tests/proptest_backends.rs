//! Property tests over the synchronization backends: for arbitrary
//! workloads, seeds and operation mixes, the optimistic and plan-based
//! backends must agree with the sequential oracle operation-by-operation
//! and leave structurally identical workspaces.

use proptest::prelude::*;

use stmbench7::backend::{Backend, FineBackend, SequentialBackend, Tl2Backend};
use stmbench7::core::{run_benchmark, BenchConfig, WorkloadType};
use stmbench7::data::{validate, StructureParams, Workspace};

fn arb_workload() -> impl Strategy<Value = WorkloadType> {
    prop_oneof![
        Just(WorkloadType::ReadDominated),
        Just(WorkloadType::ReadWrite),
        Just(WorkloadType::WriteDominated),
    ]
}

/// Runs one deterministic single-thread benchmark and returns the per-op
/// (completed, failed) counts plus the final census.
fn profile<B: Backend>(
    backend: &B,
    params: &StructureParams,
    cfg: &BenchConfig,
) -> (Vec<(u64, u64)>, stmbench7::data::Census) {
    let report = run_benchmark(backend, params, cfg);
    let counts = report
        .per_op
        .iter()
        .map(|o| (o.completed, o.failed))
        .collect();
    let census = validate(&backend.export()).expect("structure corrupted");
    (counts, census)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // Each case runs three full benchmark configurations.
        ..ProptestConfig::default()
    })]

    /// The fine-grained (discover/sort/acquire) and TL2 backends replay
    /// any deterministic workload exactly like the sequential oracle.
    #[test]
    fn fine_and_tl2_match_the_sequential_oracle(
        workload in arb_workload(),
        seed in 0u64..1_000_000,
        build_seed in 0u64..1_000,
        ops in 50u64..150,
        long_traversals in proptest::bool::ANY,
        structure_mods in proptest::bool::ANY,
    ) {
        let params = StructureParams::tiny();
        let mut cfg = BenchConfig::deterministic(workload, ops, seed);
        cfg.long_traversals = long_traversals;
        cfg.structure_mods = structure_mods;

        let seq = SequentialBackend::new(Workspace::build(params.clone(), build_seed));
        let (oracle_counts, oracle_census) = profile(&seq, &params, &cfg);

        let fine = FineBackend::new(Workspace::build(params.clone(), build_seed));
        let (fine_counts, fine_census) = profile(&fine, &params, &cfg);
        prop_assert_eq!(&fine_counts, &oracle_counts, "fine disagrees with the oracle");
        prop_assert_eq!(&fine_census, &oracle_census);

        let tl2 = Tl2Backend::from_workspace(
            &Workspace::build(params.clone(), build_seed),
            stmbench7::stm::Tl2Runtime::default(),
            stmbench7::backend::Granularity::Sharded,
        );
        let (tl2_counts, tl2_census) = profile(&tl2, &params, &cfg);
        prop_assert_eq!(&tl2_counts, &oracle_counts, "tl2 disagrees with the oracle");
        prop_assert_eq!(&tl2_census, &oracle_census);
    }

    /// Single-threaded fine-grained execution never needs plan retries or
    /// fallbacks: with no concurrent date-index writers, discovery is
    /// always exact.
    #[test]
    fn fine_plans_are_exact_without_concurrency(
        workload in arb_workload(),
        seed in 0u64..1_000_000,
    ) {
        let params = StructureParams::tiny();
        let cfg = BenchConfig::deterministic(workload, 80, seed);
        let fine = FineBackend::new(Workspace::build(params.clone(), 3));
        run_benchmark(&fine, &params, &cfg);
        let stats = fine.fine_stats();
        prop_assert_eq!(stats.plan_retries, 0);
        prop_assert_eq!(stats.fallbacks, 0);
        prop_assert!(stats.planned_ops + stats.exclusive_ops >= 80);
    }
}
