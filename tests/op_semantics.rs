//! Exact-semantics tests for individual operations, run over the plain
//! workspace through `DirectTx` (the sequential path every other backend
//! was shown equivalent to in `backends_agree.rs`).

use stmbench7::core::ops::{run_op, OpCtx, OpKind};
use stmbench7::data::{validate, DirectTx, OpOutcome, StructureParams, Workspace};

fn run_one(ws: &mut Workspace, op: OpKind, seed: u64) -> OpOutcome {
    let params = ws.params.clone();
    let mut ctx = OpCtx::new(params, seed);
    let mut tx = DirectTx::writing(ws);
    run_op(op, &mut tx, &mut ctx).expect("direct execution cannot abort")
}

fn done(outcome: OpOutcome) -> i64 {
    match outcome {
        OpOutcome::Done(v) => v,
        OpOutcome::Fail(reason) => panic!("unexpected failure: {reason}"),
    }
}

#[test]
fn t1_visits_every_part_once_per_composite_reference() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let expect = (p.initial_bases() * p.comps_per_base * p.atomics_per_comp) as i64;
    assert_eq!(done(run_one(&mut ws, OpKind::T1, 1)), expect);
}

#[test]
fn t6_visits_only_root_parts() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let expect = (p.initial_bases() * p.comps_per_base) as i64;
    assert_eq!(done(run_one(&mut ws, OpKind::T6, 1)), expect);
}

#[test]
fn t2b_and_t3b_update_but_preserve_validity_and_counts() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let expect = (p.initial_bases() * p.comps_per_base * p.atomics_per_comp) as i64;
    assert_eq!(done(run_one(&mut ws, OpKind::T2b, 2)), expect);
    assert_eq!(done(run_one(&mut ws, OpKind::T3b, 3)), expect);
    // T3b moved every part's build date; the date index must have
    // followed (validate checks index coherence).
    validate(&ws).unwrap();
}

#[test]
fn t5_document_swap_roundtrips() {
    let mut ws = Workspace::build(StructureParams::tiny(), 5);
    let first = done(run_one(&mut ws, OpKind::T5, 1));
    assert!(first > 0);
    let second = done(run_one(&mut ws, OpKind::T5, 1));
    assert_eq!(first, second, "swapping back must undo the same count");
    validate(&ws).unwrap();
}

#[test]
fn q7_visits_every_atomic_part_exactly_once() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    assert_eq!(
        done(run_one(&mut ws, OpKind::Q7, 1)),
        p.initial_atomics() as i64
    );
}

#[test]
fn q6_matches_are_a_subset_of_complex_assemblies() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let matched = done(run_one(&mut ws, OpKind::Q6, 1));
    assert!(matched >= 0);
    assert!(matched <= p.initial_complexes() as i64);
}

#[test]
fn st5_counts_outdated_base_assemblies() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let matched = done(run_one(&mut ws, OpKind::St5, 1));
    assert!(matched >= 0 && matched <= p.initial_bases() as i64);
}

#[test]
fn op4_op5_op11_manual_semantics() {
    let mut ws = Workspace::build(StructureParams::tiny(), 5);
    let upper = done(run_one(&mut ws, OpKind::Op4, 1));
    assert!(upper > 0);
    // OP11 swaps 'I' to 'i'; OP4 must then count zero.
    assert_eq!(done(run_one(&mut ws, OpKind::Op11, 1)), upper);
    assert_eq!(done(run_one(&mut ws, OpKind::Op4, 1)), 0);
    // OP5: manual starts and ends with the repeated pattern — compare
    // against the text directly.
    let expect = i64::from(stmbench7::data::text::first_last_equal(&ws.manual.text));
    assert_eq!(done(run_one(&mut ws, OpKind::Op5, 1)), expect);
}

#[test]
fn op2_op3_respect_date_ranges() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let young = done(run_one(&mut ws, OpKind::Op2, 1));
    let old = done(run_one(&mut ws, OpKind::Op3, 1));
    assert!(young <= old, "OP3's range contains OP2's");
    assert!(old <= p.initial_atomics() as i64);
    // Exact check against the store.
    let (lo, hi) = p.young_range();
    let expect = ws
        .atomics
        .store
        .iter()
        .filter(|(_, part)| (lo..=hi).contains(&part.build_date))
        .count() as i64;
    assert_eq!(young, expect);
}

#[test]
fn sm1_and_sm2_grow_and_shrink_the_library() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let before = validate(&ws).unwrap();
    let new_comp = done(run_one(&mut ws, OpKind::Sm1, 9));
    let mid = validate(&ws).unwrap();
    assert_eq!(mid.composite_parts, before.composite_parts + 1);
    assert_eq!(mid.atomic_parts, before.atomic_parts + p.atomics_per_comp);
    assert_eq!(mid.documents, before.documents + 1);
    assert!(new_comp > 0);

    // Delete composites until SM2 hits one (random ids may miss).
    let mut deleted = false;
    for seed in 0..200 {
        if let OpOutcome::Done(_) = run_one(&mut ws, OpKind::Sm2, seed) {
            deleted = true;
            break;
        }
    }
    assert!(deleted, "SM2 never hit an existing composite part");
    let after = validate(&ws).unwrap();
    assert_eq!(after.composite_parts, mid.composite_parts - 1);
    assert_eq!(after.atomic_parts, mid.atomic_parts - p.atomics_per_comp);
}

#[test]
fn sm5_to_sm8_preserve_all_invariants() {
    let mut ws = Workspace::build(StructureParams::tiny(), 5);
    let mut done_count = [0u32; 4];
    for seed in 0..300u64 {
        for (i, op) in [OpKind::Sm5, OpKind::Sm6, OpKind::Sm7, OpKind::Sm8]
            .into_iter()
            .enumerate()
        {
            if let OpOutcome::Done(_) = run_one(&mut ws, op, seed * 4 + i as u64) {
                done_count[i] += 1;
            }
            validate(&ws).unwrap_or_else(|e| panic!("{} broke structure: {e}", op.name()));
        }
    }
    // All four must have succeeded at least once over 300 rounds.
    for (i, op) in ["SM5", "SM6", "SM7", "SM8"].iter().enumerate() {
        assert!(done_count[i] > 0, "{op} never completed");
    }
}

#[test]
fn sm3_and_sm4_link_and_unlink() {
    let mut ws = Workspace::build(StructureParams::tiny(), 5);
    let mut linked = 0;
    let mut unlinked = 0;
    for seed in 0..200u64 {
        if let OpOutcome::Done(_) = run_one(&mut ws, OpKind::Sm3, seed) {
            linked += 1;
        }
        validate(&ws).unwrap();
        if let OpOutcome::Done(_) = run_one(&mut ws, OpKind::Sm4, seed) {
            unlinked += 1;
        }
        validate(&ws).unwrap();
    }
    assert!(linked > 0, "SM3 never completed");
    assert!(unlinked > 0, "SM4 never completed");
}

#[test]
fn short_traversals_fail_reasons_are_per_spec() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    // ST3 on a huge id space fails with an index miss often; collect the
    // reasons seen.
    let mut saw_fail = false;
    for seed in 0..100 {
        if let OpOutcome::Fail(reason) = run_one(&mut ws, OpKind::St3, seed) {
            assert!(reason.contains("not found") || reason.contains("not used"));
            saw_fail = true;
        }
    }
    assert!(saw_fail, "random-id operations must sometimes fail");
}
