//! Failure injection against the structural validator.
//!
//! Every concurrency test in this suite trusts `validate()` to catch a
//! corrupted structure — so the validator itself must be shown to detect
//! each class of corruption a buggy backend could produce. Each test
//! takes a valid workspace, breaks exactly one invariant by hand, and
//! asserts the validator rejects it with the right diagnostic.

use stmbench7::data::objects::AssemblyChildren;
use stmbench7::data::{validate, StructureParams, Workspace};

fn fresh() -> Workspace {
    Workspace::build(StructureParams::tiny(), 17)
}

/// Runs the validator and asserts it fails mentioning `needle`.
fn assert_rejects(ws: &Workspace, needle: &str) {
    match validate(ws) {
        Ok(_) => panic!("validator accepted a structure corrupted via: {needle}"),
        Err(msg) => assert!(
            msg.contains(needle),
            "wrong diagnostic: got {msg:?}, expected it to contain {needle:?}"
        ),
    }
}

#[test]
fn fresh_builds_validate() {
    validate(&fresh()).unwrap();
}

#[test]
fn detects_missing_design_root() {
    let mut ws = fresh();
    let root = ws.module.design_root.raw();
    let level = *ws.sm.complex_index.get(&root).unwrap();
    ws.complex_level_mut(level).store.remove(root);
    ws.sm.complex_index.remove(&root);
    assert_rejects(&ws, "design root does not exist");
}

#[test]
fn detects_stale_complex_level_index_for_the_root() {
    let mut ws = fresh();
    let root = ws.module.design_root.raw();
    // Claim the root lives at the wrong level: lookups that resolve the
    // level through index 6 can no longer find the object.
    ws.sm.complex_index.insert(root, 2);
    assert_rejects(&ws, "design root does not exist");
}

#[test]
fn detects_orphaned_subtree() {
    let mut ws = fresh();
    // Detach the root's first child without deleting the subtree: the
    // subtree becomes unreachable, breaking "the root complex assembly
    // is always connected to all base assemblies".
    let root = ws.module.design_root;
    let level = ws.params.assembly_levels;
    let ca = ws
        .complex_level_mut(level)
        .store
        .get_mut(root.raw())
        .unwrap();
    match &mut ca.children {
        AssemblyChildren::Complex(v) => {
            v.remove(0);
        }
        AssemblyChildren::Base(v) => {
            v.remove(0);
        }
    }
    assert_rejects(&ws, "unreachable");
}

#[test]
fn detects_parent_link_mismatch() {
    let mut ws = fresh();
    // Rewire some level-2 assembly's parent to itself.
    let victim = {
        let (raw, _) = ws.complex_level(2).store.iter().next().unwrap();
        raw
    };
    let ca = ws.complex_level_mut(2).store.get_mut(victim).unwrap();
    ca.parent = Some(ca.id);
    assert_rejects(&ws, "parent mismatch");
}

#[test]
fn detects_bag_multiplicity_mismatch() {
    let mut ws = fresh();
    // Add a forward link without the reverse entry.
    let comp = {
        let (raw, _) = ws.composites.store.iter().next().unwrap();
        stmbench7::data::CompositePartId(raw)
    };
    let (_, base) = ws.bases.store.iter().next().unwrap();
    let base_raw = base.id.raw();
    ws.bases
        .store
        .get_mut(base_raw)
        .unwrap()
        .components
        .push(comp);
    assert_rejects(&ws, "bag multiplicity mismatch");
}

#[test]
fn detects_dangling_used_in_entry() {
    let mut ws = fresh();
    let (_, base) = ws.bases.store.iter().next().unwrap();
    let base_id = base.id;
    let comp_raw = {
        let (raw, _) = ws.composites.store.iter().next().unwrap();
        raw
    };
    // A reverse entry with no matching forward link.
    ws.composites
        .store
        .get_mut(comp_raw)
        .unwrap()
        .used_in
        .push(base_id);
    assert_rejects(&ws, "forward link");
}

#[test]
fn detects_date_index_drift() {
    let mut ws = fresh();
    // Mutate an indexed attribute directly, bypassing the index — the
    // bug `Sb7Tx::set_atomic_build_date` exists to prevent.
    let raw = {
        let (raw, _) = ws.atomics.store.iter().next().unwrap();
        raw
    };
    ws.atomics.store.get_mut(raw).unwrap().build_date += 1;
    assert_rejects(&ws, "missing from date index");
}

#[test]
fn detects_title_index_drift() {
    let mut ws = fresh();
    let title = {
        let (_, doc) = ws.documents.store.iter().next().unwrap();
        doc.title.clone()
    };
    ws.documents.by_title.remove(&title);
    assert_rejects(&ws, "title index wrong");
}

#[test]
fn detects_document_back_link_corruption() {
    let mut ws = fresh();
    // Point a document at the wrong composite.
    let (first, second) = {
        let mut it = ws.composites.store.iter();
        let a = it.next().unwrap().1.clone();
        let b = it.next().unwrap().1.clone();
        (a, b)
    };
    ws.documents.store.get_mut(first.doc.raw()).unwrap().part = second.id;
    assert_rejects(&ws, "document back link wrong");
}

#[test]
fn detects_atomic_owner_corruption() {
    let mut ws = fresh();
    let (first, second) = {
        let mut it = ws.composites.store.iter();
        let a = it.next().unwrap().1.clone();
        let b = it.next().unwrap().1.clone();
        (a, b)
    };
    ws.atomics
        .store
        .get_mut(first.root_part.raw())
        .unwrap()
        .owner = second.id;
    assert_rejects(&ws, "owner mismatch");
}

#[test]
fn detects_disconnected_part_graph() {
    let mut ws = fresh();
    // Cut every outgoing connection of a root part: the rest of its
    // graph becomes unreachable from the root.
    let root_part = {
        let (_, comp) = ws.composites.store.iter().next().unwrap();
        comp.root_part
    };
    ws.atomics
        .store
        .get_mut(root_part.raw())
        .unwrap()
        .to
        .clear();
    assert_rejects(&ws, "parts reachable from root");
}

#[test]
fn detects_pool_drift() {
    let mut ws = fresh();
    // Allocate an id without creating the object.
    ws.sm.pools.atomic.alloc().unwrap();
    assert_rejects(&ws, "atomic pool count mismatch");
}

#[test]
fn detects_duplicate_parts_entry() {
    let mut ws = fresh();
    let (comp_raw, part) = {
        let (raw, comp) = ws.composites.store.iter().next().unwrap();
        (raw, comp.parts[0])
    };
    ws.composites
        .store
        .get_mut(comp_raw)
        .unwrap()
        .parts
        .push(part);
    assert_rejects(&ws, "duplicates");
}
