//! End-to-end tests of the `stmbench7` command-line interface (paper
//! Appendix A.1): flag parsing, the report sections, `--describe`, and
//! post-run validation, exercised through the real binary.

use std::process::Command;

fn stmbench7() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stmbench7"))
}

fn run_ok(args: &[&str]) -> (String, String) {
    let out = stmbench7().args(args).output().expect("binary must launch");
    assert!(
        out.status.success(),
        "stmbench7 {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    )
}

#[test]
fn describe_prints_census_and_indexes() {
    let (stdout, _) = run_ok(&["-s", "tiny", "--describe"]);
    assert!(stdout.contains("complex assemblies: 4"));
    assert!(stdout.contains("base assemblies:    9"));
    assert!(stdout.contains("atomic parts:       120"));
    // All six indexes of Table 1.
    for needle in [
        "atomic part id",
        "atomic part build date",
        "composite part id",
        "document title",
        "base assembly id",
        "complex assembly id",
    ] {
        assert!(stdout.contains(needle), "missing index line: {needle}");
    }
}

#[test]
fn fixed_ops_run_emits_all_report_sections() {
    let (stdout, _) = run_ok(&[
        "-s",
        "tiny",
        "-g",
        "medium",
        "-w",
        "rw",
        "--ops",
        "200",
        "--ttc-histograms",
        "--validate",
    ]);
    for section in [
        "== Benchmark parameters ==",
        "== TTC histograms ==",
        "== Detailed results ==",
        "== Sample errors ==",
        "== Summary ==",
    ] {
        assert!(stdout.contains(section), "missing section: {section}");
    }
    assert!(stdout.contains("total throughput"));
    assert!(stdout.contains("TTC histogram for"));
}

#[test]
fn every_strategy_flag_runs_and_validates() {
    for strategy in [
        "sequential",
        "coarse",
        "medium",
        "fine",
        "astm",
        "astm-sharded",
        "astm-visible",
        "tl2",
        "tl2-sharded",
        "norec",
        "norec-sharded",
    ] {
        let (stdout, stderr) = run_ok(&[
            "-s",
            "tiny",
            "-g",
            strategy,
            "-w",
            "w",
            "--ops",
            "100",
            "--validate",
        ]);
        assert!(
            stdout.contains("total throughput"),
            "{strategy}: no throughput line"
        );
        assert!(
            stderr.contains("structure valid"),
            "{strategy}: structure not validated:\n{stderr}"
        );
    }
}

#[test]
fn shards_flag_runs_and_validates_across_strategies() {
    // The shard axis must be result-invisible: a sharded run still
    // completes and the exported structure still validates, for a lock
    // strategy with per-shard locks and an STM whose variable sets scale
    // with the axis.
    for strategy in ["medium", "fine", "tl2-sharded"] {
        let (stdout, stderr) = run_ok(&[
            "-s",
            "tiny",
            "--shards",
            "8",
            "-g",
            strategy,
            "-w",
            "rw",
            "--ops",
            "150",
            "--validate",
        ]);
        assert!(stdout.contains("total throughput"), "{strategy}");
        assert!(stderr.contains("structure valid"), "{strategy}:\n{stderr}");
    }
    // Out-of-range counts fail cleanly, order-independently.
    let out = stmbench7()
        .args(["--shards", "65", "-s", "tiny", "--ops", "10"])
        .output()
        .expect("binary must launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("index_shards"));
}

#[test]
fn custom_workload_flag_runs() {
    let (stdout, _) = run_ok(&["-s", "tiny", "-w", "u25", "--ops", "150", "--validate"]);
    assert!(stdout.contains("workload:            custom (25% updates)"));
    assert!(stdout.contains("total throughput"));
}

#[test]
fn stm_strategies_report_stm_statistics() {
    let (stdout, _) = run_ok(&["-s", "tiny", "-g", "tl2", "--ops", "100"]);
    assert!(stdout.contains("== STM statistics =="));
    assert!(stdout.contains("commits"));
}

#[test]
fn unknown_flags_fail_with_usage() {
    let out = stmbench7()
        .arg("--bogus")
        .output()
        .expect("binary must launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn unknown_strategy_fails_cleanly() {
    let out = stmbench7()
        .args(["-g", "nonsense"])
        .output()
        .expect("binary must launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));
}

mod lab {
    use super::*;
    use stmbench7::core::JsonValue;
    use stmbench7::lab::json::parse;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sb7-lab-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_smoke(out: &std::path::Path, extra: &[&str]) -> std::process::Output {
        stmbench7()
            .args([
                "lab", "smoke", "--secs", "0.03", "--warmup", "0", "--reps", "2", "--out",
            ])
            .arg(out)
            .args(extra)
            .output()
            .expect("binary must launch")
    }

    #[test]
    fn list_names_every_builtin_spec() {
        let (stdout, _) = run_ok(&["lab", "--list"]);
        for name in [
            "smoke",
            "paper_fig3",
            "paper_fig6",
            "scaling",
            "write_storm",
            "mixed_custom",
            "net_loopback",
            "slo_burst",
        ] {
            assert!(stdout.contains(name), "missing spec {name}");
        }
    }

    #[test]
    fn sharded_scaling_runs_and_gates_against_the_committed_baseline() {
        let dir = tmp_dir("sharded");
        let out_path = dir.join("BENCH_sharded.json");
        // The mechanism behind the CI gate, at a tolerance wide enough
        // for this *debug* binary against the release-recorded baseline;
        // the real 10x shape check runs in CI on the release build.
        let out = stmbench7()
            .args([
                "lab",
                "sharded_scaling",
                "--secs",
                "0.03",
                "--warmup",
                "0",
                "--reps",
                "1",
                "--compare",
                "results/BENCH_sharded_baseline.json",
                "--tolerance",
                "100x",
                "--out",
            ])
            .arg(&out_path)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("binary must launch");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(&out_path).expect("results written");
        let doc = parse(&text).expect("results must be valid JSON");
        let cells = doc.get("cells").and_then(JsonValue::as_array).unwrap();
        assert_eq!(cells.len(), 18, "3 backends × 3 shard counts × 2t");
        // The shard axis is first-class in both the key and the cell body.
        assert!(cells.iter().any(|c| {
            c.get("key")
                .and_then(JsonValue::as_str)
                .is_some_and(|k| k.contains("/s16/"))
                && c.get("shards").and_then(JsonValue::as_u64) == Some(16)
        }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_spec_fails_cleanly() {
        let out = stmbench7()
            .args(["lab", "nonsense"])
            .output()
            .expect("binary must launch");
        assert!(!out.status.success());
        assert!(String::from_utf8_lossy(&out.stderr).contains("unknown spec"));
    }

    #[test]
    fn smoke_writes_a_versioned_parseable_document() {
        let dir = tmp_dir("write");
        let out_path = dir.join("BENCH_smoke.json");
        let out = run_smoke(&out_path, &[]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(&out_path).expect("results written");
        let doc = parse(&text).expect("results must be valid JSON");
        assert_eq!(
            doc.get("format").and_then(JsonValue::as_str),
            Some("stmbench7-lab/7")
        );
        assert_eq!(doc.get("spec").and_then(JsonValue::as_str), Some("smoke"));
        let cells = doc.get("cells").and_then(JsonValue::as_array).unwrap();
        assert_eq!(cells.len(), 6, "smoke grid is 3 backends × 2 thread counts");
        for cell in cells {
            assert!(cell.get("key").and_then(JsonValue::as_str).is_some());
            let median = cell
                .get("throughput")
                .and_then(|t| t.get("median"))
                .and_then(JsonValue::as_f64)
                .unwrap();
            assert!(median > 0.0);
            assert_eq!(
                cell.get("reps")
                    .and_then(JsonValue::as_array)
                    .map(<[_]>::len),
                Some(2)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Scales every cell's median throughput in a results document —
    /// fabricating a baseline from better (or worse) hardware.
    fn doctor_medians(doc: &JsonValue, factor: f64) -> JsonValue {
        match doc {
            JsonValue::Obj(pairs) => JsonValue::Obj(
                pairs
                    .iter()
                    .map(|(k, v)| {
                        let v = if k == "throughput" {
                            match v {
                                JsonValue::Obj(stats) => JsonValue::Obj(
                                    stats
                                        .iter()
                                        .map(|(sk, sv)| {
                                            let sv = match (sk.as_str(), sv) {
                                                ("median", JsonValue::Num(x)) => {
                                                    JsonValue::Num(x * factor)
                                                }
                                                _ => sv.clone(),
                                            };
                                            (sk.clone(), sv)
                                        })
                                        .collect(),
                                ),
                                other => other.clone(),
                            }
                        } else {
                            doctor_medians(v, factor)
                        };
                        (k.clone(), v)
                    })
                    .collect(),
            ),
            JsonValue::Arr(items) => {
                JsonValue::Arr(items.iter().map(|v| doctor_medians(v, factor)).collect())
            }
            other => other.clone(),
        }
    }

    #[test]
    fn compare_gates_against_a_doctored_worse_baseline() {
        let dir = tmp_dir("compare");
        let honest = dir.join("honest.json");
        let out = run_smoke(&honest, &[]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = parse(&std::fs::read_to_string(&honest).unwrap()).unwrap();

        // A baseline 1000x faster than this machine: the fresh run must
        // regress and the gate must fail with a readable report.
        let fast_baseline = dir.join("fast.json");
        std::fs::write(&fast_baseline, doctor_medians(&doc, 1000.0).render()).unwrap();
        let out = run_smoke(
            &dir.join("second.json"),
            &[
                "--compare",
                fast_baseline.to_str().unwrap(),
                "--tolerance",
                "10x",
            ],
        );
        assert!(!out.status.success(), "regression must exit nonzero");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("REGRESSED"),
            "report names the cells:\n{stdout}"
        );
        assert!(
            stdout.contains("REGRESSION"),
            "report has a verdict:\n{stdout}"
        );

        // Against its own numbers with a loose tolerance, the gate holds.
        let out = run_smoke(
            &dir.join("third.json"),
            &["--compare", honest.to_str().unwrap(), "--tolerance", "10x"],
        );
        assert!(
            out.status.success(),
            "self-comparison within 10x must pass:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("verdict: OK"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

mod serve {
    use super::*;

    #[test]
    fn serve_reports_the_latency_decomposition() {
        let (stdout, stderr) = run_ok(&[
            "serve",
            "open:50000",
            "-s",
            "tiny",
            "--backend",
            "tl2",
            "-w",
            "rw",
            "-l",
            "0.05",
            "--workers",
            "2",
            "--validate",
        ]);
        assert!(
            stdout.contains("== Service =="),
            "service section:\n{stdout}"
        );
        // Queue-wait and service-time percentiles, separately.
        assert!(stdout.contains("queue wait"), "queue-wait row:\n{stdout}");
        assert!(
            stdout.contains("service time"),
            "service-time row:\n{stdout}"
        );
        assert!(stdout.contains("end-to-end"));
        assert!(stdout.contains("p50") && stdout.contains("p95") && stdout.contains("p99"));
        assert!(stdout.contains("schedule:            open50000"));
        assert!(stdout.contains("total throughput"));
        assert!(stderr.contains("structure valid"), "{stderr}");
    }

    #[test]
    fn closed_schedule_with_batching_and_rejection_runs() {
        let (stdout, _) = run_ok(&[
            "serve",
            "closed:2",
            "-s",
            "tiny",
            "--requests",
            "400",
            "--queue-cap",
            "16",
            "--admission",
            "reject",
            "--batch",
            "8",
            "-w",
            "r",
            "--validate",
        ]);
        assert!(stdout.contains("== Service =="));
        assert!(stdout.contains("rejected"), "reject counter:\n{stdout}");
        assert!(stdout.contains("batch 8"));
    }

    #[test]
    fn bad_schedule_fails_with_usage() {
        for bad in ["open:0", "open:x", "warble:3", "closed"] {
            let out = stmbench7()
                .args(["serve", bad, "-s", "tiny"])
                .output()
                .expect("binary must launch");
            assert!(!out.status.success(), "'{bad}' must be rejected");
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains("USAGE"),
                "'{bad}' must print usage:\n{stderr}"
            );
        }
    }

    #[test]
    fn closed_schedule_without_requests_fails_cleanly() {
        let out = stmbench7()
            .args(["serve", "closed:2", "-s", "tiny"])
            .output()
            .expect("binary must launch");
        assert!(!out.status.success());
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--requests"), "{stderr}");
    }

    #[test]
    fn lab_latency_open_writes_service_results() {
        let dir = std::env::temp_dir().join(format!("sb7-serve-lab-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("BENCH_latency.json");
        let out = stmbench7()
            .args([
                "lab",
                "latency_open",
                "--reps",
                "1",
                "--warmup",
                "0",
                "--out",
            ])
            .arg(&out_path)
            .output()
            .expect("binary must launch");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = stmbench7::lab::json::parse(&std::fs::read_to_string(&out_path).unwrap())
            .expect("valid JSON");
        let cells = doc
            .get("cells")
            .and_then(stmbench7::core::JsonValue::as_array)
            .unwrap();
        assert_eq!(cells.len(), 2, "medium + tl2-sharded");
        for cell in cells {
            let svc = cell.get("service").expect("service object");
            assert!(
                svc.get("queue_wait_us")
                    .and_then(|l| l.get("p99"))
                    .is_some(),
                "queue-wait percentiles in results"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

mod net {
    use super::*;
    use std::io::BufRead;
    use std::process::Stdio;

    /// Spawns `net-serve` on an ephemeral port and parses the readiness
    /// line off its stderr. Returns the child and the bound address.
    fn spawn_server(extra: &[&str]) -> (std::process::Child, String) {
        let mut child = stmbench7()
            .args(["net-serve", "--addr", "127.0.0.1:0", "-s", "tiny"])
            .args(extra)
            .stderr(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("server must launch");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut lines = std::io::BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before listening")
                .expect("stderr is UTF-8");
            if let Some(addr) = line.strip_prefix("listening on ") {
                break addr.to_string();
            }
        };
        // Keep the pipe drained so the server can't block on stderr.
        std::thread::spawn(move || for _ in lines {});
        (child, addr)
    }

    /// Like [`spawn_server`], but with `--metrics 127.0.0.1:0`; also
    /// parses the `metrics on <addr>` line (printed before the
    /// readiness line). Returns (child, data addr, metrics addr).
    fn spawn_server_with_metrics(extra: &[&str]) -> (std::process::Child, String, String) {
        let mut child = stmbench7()
            .args([
                "net-serve",
                "--addr",
                "127.0.0.1:0",
                "--metrics",
                "127.0.0.1:0",
                "-s",
                "tiny",
            ])
            .args(extra)
            .stderr(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("server must launch");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut lines = std::io::BufReader::new(stderr).lines();
        let mut metrics_addr = None;
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before listening")
                .expect("stderr is UTF-8");
            if let Some(addr) = line.strip_prefix("metrics on ") {
                metrics_addr = Some(addr.to_string());
            }
            if let Some(addr) = line.strip_prefix("listening on ") {
                break addr.to_string();
            }
        };
        std::thread::spawn(move || for _ in lines {});
        let metrics_addr = metrics_addr.expect("metrics line precedes the readiness line");
        (child, addr, metrics_addr)
    }

    /// One metrics scrape over plain HTTP/1.0: returns (status line, body).
    fn scrape(addr: &str) -> (String, String) {
        use std::io::{Read as _, Write as _};
        let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: t\r\n\r\n")
            .expect("write scrape request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header block");
        let status = head.lines().next().unwrap_or_default().to_string();
        (status, body.to_string())
    }

    fn counter_value(body: &str, name: &str) -> u64 {
        body.lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} present in:\n{body}"))
    }

    #[test]
    fn metrics_endpoint_is_scrapeable_mid_run() {
        // The CI-gated metrics smoke: scrape before and after a drive,
        // both while the server is live — the exposition must parse and
        // stmbench7_ops_total must be exact across the two scrapes.
        let (mut server, addr, metrics_addr) =
            spawn_server_with_metrics(&["-g", "coarse", "--workers", "2"]);

        let before = scrape(&metrics_addr);
        run_ok(&[
            "net-drive",
            "closed:2",
            "--addr",
            &addr,
            "--connections",
            "2",
            "--requests",
            "100",
            "-w",
            "rw",
        ]);
        let after = scrape(&metrics_addr);
        stmbench7::net::shutdown(&addr).expect("shutdown acknowledged");
        let status = server.wait().expect("server must exit after shutdown");
        assert!(status.success(), "server exit must be clean: {status:?}");

        assert_eq!(before.0, "HTTP/1.0 200 OK");
        for family in [
            "# TYPE stmbench7_ops_total counter",
            "# TYPE stmbench7_queue_depth gauge",
            "stmbench7_latency_us_bucket",
        ] {
            assert!(before.1.contains(family), "missing {family}:\n{}", before.1);
        }
        let ops_before = counter_value(&before.1, "stmbench7_ops_total");
        let ops_after = counter_value(&after.1, "stmbench7_ops_total");
        assert!(
            ops_after > ops_before,
            "ops_total must increase across scrapes ({ops_before} -> {ops_after})"
        );
        // The client held all 100 responses before the second scrape,
        // and workers publish counters before answering: exact, not
        // merely monotonic.
        assert_eq!(ops_after, 100);
    }

    #[test]
    fn graceful_shutdown_smoke() {
        // The CI-gated smoke: start net-serve, drive 100 requests over
        // the wire, send the shutdown frame, and assert both processes
        // exit cleanly with their reports.
        let (mut server, addr) = spawn_server(&["-g", "coarse", "--workers", "2", "--validate"]);
        let (stdout, stderr) = run_ok(&[
            "net-drive",
            "closed:2",
            "--addr",
            &addr,
            "--connections",
            "2",
            "--requests",
            "100",
            "-w",
            "rw",
            "--shutdown",
        ]);
        assert!(stdout.contains("== Service =="), "client report:\n{stdout}");
        assert!(stdout.contains("offered 100"), "all offered:\n{stdout}");
        assert!(stdout.contains("network"), "network lane:\n{stdout}");
        assert!(
            stderr.contains("server shutdown acknowledged"),
            "ack:\n{stderr}"
        );

        let status = server.wait().expect("server must exit after shutdown");
        assert!(status.success(), "server exit must be clean: {status:?}");
        let mut server_stdout = String::new();
        use std::io::Read as _;
        server
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut server_stdout)
            .unwrap();
        assert!(
            server_stdout.contains("== Service =="),
            "server report:\n{server_stdout}"
        );
        assert!(
            server_stdout.contains("offered 100"),
            "server saw the whole stream:\n{server_stdout}"
        );
        assert!(
            server_stdout.contains("schedule:            net:"),
            "net-labeled schedule:\n{server_stdout}"
        );
    }

    #[test]
    fn graceful_shutdown_smoke_with_pipelining() {
        // The graceful-shutdown smoke again, but with an --inflight 8
        // window: the event-loop server must drain pipelined in-flight
        // requests before acknowledging shutdown.
        let (mut server, addr) = spawn_server(&["-g", "coarse", "--workers", "2"]);
        let (stdout, stderr) = run_ok(&[
            "net-drive",
            "closed:2",
            "--addr",
            &addr,
            "--connections",
            "2",
            "--inflight",
            "8",
            "--requests",
            "100",
            "-w",
            "rw",
            "--shutdown",
        ]);
        assert!(stdout.contains("== Service =="), "client report:\n{stdout}");
        assert!(stdout.contains("offered 100"), "all offered:\n{stdout}");
        assert!(
            stdout.contains("reconnects 0"),
            "a healthy loopback drive must not reconnect:\n{stdout}"
        );
        assert!(
            stderr.contains("server shutdown acknowledged"),
            "ack:\n{stderr}"
        );
        let status = server.wait().expect("server must exit after shutdown");
        assert!(status.success(), "server exit must be clean: {status:?}");
        let mut server_stdout = String::new();
        use std::io::Read as _;
        server
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut server_stdout)
            .unwrap();
        assert!(
            server_stdout.contains("offered 100"),
            "server drained every pipelined request:\n{server_stdout}"
        );
    }

    #[test]
    fn traced_net_run_round_trips_with_events_from_four_layers() {
        // The whole-stack observability smoke: a traced net-serve run
        // must produce valid Chrome trace_event JSON whose events span
        // the engine, backend, service, and net layers, and the
        // trace-summary subcommand must digest it.
        let dir = std::env::temp_dir().join(format!("sb7-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("net.trace.json");
        // flatcomb: its combiner emits a Backend-layer event per batch,
        // so backend coverage doesn't depend on winning a lock race.
        let (mut server, addr) = spawn_server(&[
            "-g",
            "flatcomb",
            "--workers",
            "2",
            "--trace",
            trace_path.to_str().unwrap(),
        ]);
        run_ok(&[
            "net-drive",
            "closed:2",
            "--addr",
            &addr,
            "--connections",
            "2",
            "--requests",
            "200",
            "-w",
            "rw",
            "--shutdown",
        ]);
        let status = server.wait().expect("server must exit after shutdown");
        assert!(status.success(), "server exit must be clean: {status:?}");

        let text = std::fs::read_to_string(&trace_path).expect("trace file written");
        let doc = stmbench7::lab::json::parse(&text).expect("trace must be valid JSON");
        let events = doc.as_array().expect("Chrome trace array format");
        assert!(events.len() > 10, "expected a populated trace");
        let mut layers: Vec<String> = events
            .iter()
            .filter_map(|e| e.get("cat"))
            .filter_map(|c| c.as_str().map(str::to_string))
            .collect();
        layers.sort();
        layers.dedup();
        for layer in ["engine", "backend", "service", "net"] {
            assert!(
                layers.iter().any(|l| l == layer),
                "no {layer} events in trace; layers present: {layers:?}"
            );
        }
        assert!(
            text.contains("trace_dropped"),
            "completeness marker must ride along"
        );

        let (summary, _) = run_ok(&["trace-summary", trace_path.to_str().unwrap()]);
        assert!(
            summary.contains("events across") && summary.contains("layers"),
            "summary header:\n{summary}"
        );
        assert!(summary.contains("queue-admit"), "summary rows:\n{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_summary_of_a_counter_only_trace_exits_zero_and_says_so() {
        // A run can record zero span/instant events and still write a
        // valid trace (just the drop-counter marker); summarizing it
        // must not fail or print an empty table.
        let dir = std::env::temp_dir().join(format!("sb7-ctrace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("counters.trace.json");
        std::fs::write(
            &path,
            "[{\"name\":\"trace_dropped\",\"cat\":\"obs\",\"ph\":\"C\",\"ts\":0,\
             \"pid\":1,\"tid\":0,\"args\":{\"dropped\":3}}]",
        )
        .unwrap();
        let (summary, _) = run_ok(&["trace-summary", path.to_str().unwrap()]);
        assert!(
            summary.contains("0 events across 0 layers, 3 dropped"),
            "summary header:\n{summary}"
        );
        assert!(
            summary.contains("no span/instant events"),
            "summary body:\n{summary}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_summary_top_lists_slowest_spans_from_the_fixture() {
        // A committed fixture trace pins the --top contract: per-layer
        // sections, slowest span first, instants excluded.
        let fixture = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/top_spans.trace.json"
        );
        let (out, _) = run_ok(&["trace-summary", fixture, "--top", "2"]);
        assert!(
            out.contains("top 2 slowest spans per layer:"),
            "top header:\n{out}"
        );
        assert!(out.contains("engine:") && out.contains("backend:"));
        // Engine: T1 (500 us) outranks OP3 (120 us); ST2 (80 us) is cut
        // by the truncation and the op-fail instant never qualifies.
        let t1 = out.find("op             T1").expect("T1 listed");
        let op3 = out.find("op             OP3").expect("OP3 listed");
        assert!(t1 < op3, "slowest span first:\n{out}");
        let top = &out[out.find("top 2 slowest").unwrap()..];
        assert!(!top.contains("ST2"), "third span truncated:\n{top}");
        assert!(!top.contains("SM4"), "instants are not spans:\n{top}");
        assert!(
            top.contains("lock-wait      coarse"),
            "backend span:\n{top}"
        );
        // Without --top the section is absent entirely.
        let (plain, _) = run_ok(&["trace-summary", fixture]);
        assert!(!plain.contains("slowest spans"), "no --top, no section");
    }

    #[test]
    fn net_drive_requires_an_address() {
        let out = stmbench7()
            .args(["net-drive", "open:1000"])
            .output()
            .expect("binary must launch");
        assert!(!out.status.success());
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--addr"), "{stderr}");
        assert!(stderr.contains("USAGE"), "{stderr}");
    }

    #[test]
    fn net_drive_rejects_bad_schedules() {
        for bad in ["open:0", "warble:3"] {
            let out = stmbench7()
                .args(["net-drive", bad, "--addr", "127.0.0.1:1"])
                .output()
                .expect("binary must launch");
            assert!(!out.status.success(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn lab_net_loopback_writes_the_network_lane() {
        let dir = std::env::temp_dir().join(format!("sb7-net-lab-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("BENCH_net.json");
        let out = stmbench7()
            .args([
                "lab",
                "net_loopback",
                "--reps",
                "1",
                "--warmup",
                "0",
                "--out",
            ])
            .arg(&out_path)
            .output()
            .expect("binary must launch");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = stmbench7::lab::json::parse(&std::fs::read_to_string(&out_path).unwrap())
            .expect("valid JSON");
        use stmbench7::core::JsonValue;
        let cells = doc.get("cells").and_then(JsonValue::as_array).unwrap();
        assert_eq!(cells.len(), 2, "medium + tl2-sharded");
        for cell in cells {
            let key = cell.get("key").and_then(JsonValue::as_str).unwrap();
            assert!(key.ends_with("/net2c"), "net suffix in {key}");
            let svc = cell.get("service").expect("service object");
            let net = svc.get("network_us").expect("network lane");
            assert!(
                net.get("samples").and_then(JsonValue::as_u64).unwrap() > 0,
                "network lane sampled in {key}"
            );
            assert!(
                svc.get("categories")
                    .and_then(|c| c.get("short operations"))
                    .is_some(),
                "category split in {key}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn csv_flag_appends_rows() {
    let dir = std::env::temp_dir().join(format!("sb7-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("out.csv");
    let csv_path = csv.to_str().unwrap();
    run_ok(&["-s", "tiny", "--ops", "150", "--csv", csv_path]);
    let content = std::fs::read_to_string(&csv).expect("CSV written");
    assert!(content.lines().count() > 5, "per-op rows expected");
    assert!(content.lines().all(|l| l.split(',').count() == 8));
    std::fs::remove_dir_all(&dir).ok();
}
