//! End-to-end tests of the `stmbench7` command-line interface (paper
//! Appendix A.1): flag parsing, the report sections, `--describe`, and
//! post-run validation, exercised through the real binary.

use std::process::Command;

fn stmbench7() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stmbench7"))
}

fn run_ok(args: &[&str]) -> (String, String) {
    let out = stmbench7().args(args).output().expect("binary must launch");
    assert!(
        out.status.success(),
        "stmbench7 {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    )
}

#[test]
fn describe_prints_census_and_indexes() {
    let (stdout, _) = run_ok(&["-s", "tiny", "--describe"]);
    assert!(stdout.contains("complex assemblies: 4"));
    assert!(stdout.contains("base assemblies:    9"));
    assert!(stdout.contains("atomic parts:       120"));
    // All six indexes of Table 1.
    for needle in [
        "atomic part id",
        "atomic part build date",
        "composite part id",
        "document title",
        "base assembly id",
        "complex assembly id",
    ] {
        assert!(stdout.contains(needle), "missing index line: {needle}");
    }
}

#[test]
fn fixed_ops_run_emits_all_report_sections() {
    let (stdout, _) = run_ok(&[
        "-s",
        "tiny",
        "-g",
        "medium",
        "-w",
        "rw",
        "--ops",
        "200",
        "--ttc-histograms",
        "--validate",
    ]);
    for section in [
        "== Benchmark parameters ==",
        "== TTC histograms ==",
        "== Detailed results ==",
        "== Sample errors ==",
        "== Summary ==",
    ] {
        assert!(stdout.contains(section), "missing section: {section}");
    }
    assert!(stdout.contains("total throughput"));
    assert!(stdout.contains("TTC histogram for"));
}

#[test]
fn every_strategy_flag_runs_and_validates() {
    for strategy in [
        "sequential",
        "coarse",
        "medium",
        "fine",
        "astm",
        "astm-sharded",
        "astm-visible",
        "tl2",
        "tl2-sharded",
        "norec",
        "norec-sharded",
    ] {
        let (stdout, stderr) = run_ok(&[
            "-s",
            "tiny",
            "-g",
            strategy,
            "-w",
            "w",
            "--ops",
            "100",
            "--validate",
        ]);
        assert!(
            stdout.contains("total throughput"),
            "{strategy}: no throughput line"
        );
        assert!(
            stderr.contains("structure valid"),
            "{strategy}: structure not validated:\n{stderr}"
        );
    }
}

#[test]
fn custom_workload_flag_runs() {
    let (stdout, _) = run_ok(&["-s", "tiny", "-w", "u25", "--ops", "150", "--validate"]);
    assert!(stdout.contains("workload:            custom (25% updates)"));
    assert!(stdout.contains("total throughput"));
}

#[test]
fn stm_strategies_report_stm_statistics() {
    let (stdout, _) = run_ok(&["-s", "tiny", "-g", "tl2", "--ops", "100"]);
    assert!(stdout.contains("== STM statistics =="));
    assert!(stdout.contains("commits"));
}

#[test]
fn unknown_flags_fail_with_usage() {
    let out = stmbench7()
        .arg("--bogus")
        .output()
        .expect("binary must launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn unknown_strategy_fails_cleanly() {
    let out = stmbench7()
        .args(["-g", "nonsense"])
        .output()
        .expect("binary must launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));
}

#[test]
fn csv_flag_appends_rows() {
    let dir = std::env::temp_dir().join(format!("sb7-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("out.csv");
    let csv_path = csv.to_str().unwrap();
    run_ok(&["-s", "tiny", "--ops", "150", "--csv", csv_path]);
    let content = std::fs::read_to_string(&csv).expect("CSV written");
    assert!(content.lines().count() > 5, "per-op rows expected");
    assert!(content.lines().all(|l| l.split(',').count() == 8));
    std::fs::remove_dir_all(&dir).ok();
}
