//! Per-operation semantic tests for the operations `op_semantics.rs` does
//! not pin down exactly: the update variants of the long traversals, all
//! short traversals, and the sibling/neighborhood short operations.
//!
//! The tests lean on three algebraic facts of the STMBench7 update
//! operations:
//!
//! * the non-indexed update is `swap(x, y)` — applying it twice restores
//!   the object, and it conserves `x + y`;
//! * the indexed/date update is an even/odd toggle — applying it twice
//!   restores the date;
//! * document and manual updates swap between two fixed spellings —
//!   applying them twice restores the text.
//!
//! So "run the operation twice with the same seed" must be the identity on
//! the whole structure for every non-SM update operation, and any mix of
//! the swap family conserves the global `Σ(x+y)`.

use stmbench7::core::ops::{run_op, OpCtx, OpKind};
use stmbench7::data::objects::{
    AtomicPart, BaseAssembly, ComplexAssembly, CompositePart, Document,
};
use stmbench7::data::{validate, DirectTx, OpOutcome, StructureParams, Workspace};

fn run_one(ws: &mut Workspace, op: OpKind, seed: u64) -> OpOutcome {
    let params = ws.params.clone();
    let mut ctx = OpCtx::new(params, seed);
    let mut tx = DirectTx::writing(ws);
    run_op(op, &mut tx, &mut ctx).expect("direct execution cannot abort")
}

fn done(outcome: OpOutcome) -> i64 {
    match outcome {
        OpOutcome::Done(v) => v,
        OpOutcome::Fail(reason) => panic!("unexpected failure: {reason}"),
    }
}

/// Everything mutable in the workspace, for exact before/after diffing.
type Snapshot = (
    Vec<(u32, AtomicPart)>,
    Vec<(u32, CompositePart)>,
    Vec<(u32, BaseAssembly)>,
    Vec<(u32, ComplexAssembly)>,
    Vec<(u32, Document)>,
    String,
);

fn snapshot(ws: &Workspace) -> Snapshot {
    let atoms = ws
        .atomics
        .store
        .iter()
        .map(|(r, p)| (r, p.clone()))
        .collect();
    let comps = ws
        .composites
        .store
        .iter()
        .map(|(r, c)| (r, c.clone()))
        .collect();
    let bases = ws.bases.store.iter().map(|(r, b)| (r, b.clone())).collect();
    let mut complexes = Vec::new();
    for group in &ws.complexes {
        complexes.extend(group.store.iter().map(|(r, c)| (r, c.clone())));
    }
    let docs = ws
        .documents
        .store
        .iter()
        .map(|(r, d)| (r, d.clone()))
        .collect();
    (atoms, comps, bases, complexes, docs, ws.manual.text.clone())
}

fn xy_sum(ws: &Workspace) -> i64 {
    ws.atomics
        .store
        .iter()
        .map(|(_, p)| i64::from(p.x) + i64::from(p.y))
        .sum()
}

fn fresh() -> Workspace {
    Workspace::build(StructureParams::tiny(), 5)
}

// ---------------------------------------------------------------------------
// Long traversal update variants
// ---------------------------------------------------------------------------

/// How often T-family traversals reach each composite's graph: once per
/// bag occurrence in any base assembly (composite parts are shared).
fn traversal_multiplicity(ws: &Workspace) -> std::collections::HashMap<u32, usize> {
    let mut mult: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (_, base) in ws.bases.store.iter() {
        for comp in &base.components {
            *mult.entry(comp.raw()).or_default() += 1;
        }
    }
    mult
}

#[test]
fn t2a_swaps_root_parts_once_per_bag_occurrence() {
    let mut ws = fresh();
    let before = snapshot(&ws);
    // Root part raw id → number of times its graph is traversed. A part
    // swapped an even number of times ends up unchanged.
    let mult = traversal_multiplicity(&ws);
    let root_swaps: std::collections::HashMap<u32, usize> = ws
        .composites
        .store
        .iter()
        .map(|(raw, c)| (c.root_part.raw(), mult.get(&raw).copied().unwrap_or(0)))
        .collect();
    let visited = done(run_one(&mut ws, OpKind::T2a, 1));
    // T2a walks the full structure (same count as T1) but only updates
    // the root part of each graph.
    let expect = StructureParams::tiny();
    assert_eq!(
        visited,
        (expect.initial_bases() * expect.comps_per_base * expect.atomics_per_comp) as i64
    );
    for ((raw, old), (_, new)) in before.0.iter().zip(ws.atomics.store.iter()) {
        if root_swaps.get(raw).copied().unwrap_or(0) % 2 == 1 {
            assert_eq!((old.x, old.y), (new.y, new.x), "root part {raw} swapped");
        } else {
            assert_eq!((old.x, old.y), (new.x, new.y), "part {raw} unchanged");
        }
    }
}

#[test]
fn t2b_twice_is_identity() {
    let mut ws = fresh();
    let before = snapshot(&ws);
    done(run_one(&mut ws, OpKind::T2b, 1));
    assert_ne!(before, snapshot(&ws), "one pass must change the parts");
    done(run_one(&mut ws, OpKind::T2b, 2));
    assert_eq!(before, snapshot(&ws), "two swaps must restore every part");
}

#[test]
fn t2c_is_identity_in_a_single_run() {
    // T2c applies the swap four times per part: a net no-op that still
    // produces 4x the write traffic — the point of the operation.
    let mut ws = fresh();
    let before = snapshot(&ws);
    let visited = done(run_one(&mut ws, OpKind::T2c, 1));
    assert!(visited > 0);
    assert_eq!(before, snapshot(&ws));
}

#[test]
fn t3a_toggles_only_root_dates_and_keeps_the_index() {
    let mut ws = fresh();
    let before = snapshot(&ws);
    let mult = traversal_multiplicity(&ws);
    let root_toggles: std::collections::HashMap<u32, usize> = ws
        .composites
        .store
        .iter()
        .map(|(raw, c)| (c.root_part.raw(), mult.get(&raw).copied().unwrap_or(0)))
        .collect();
    done(run_one(&mut ws, OpKind::T3a, 1));
    for ((raw, old), (_, new)) in before.0.iter().zip(ws.atomics.store.iter()) {
        // The even/odd toggle self-inverts: an even number of
        // applications restores the date.
        if root_toggles.get(raw).copied().unwrap_or(0) % 2 == 1 {
            assert_eq!(AtomicPart::next_build_date(old.build_date), new.build_date);
        } else {
            assert_eq!(old.build_date, new.build_date);
        }
    }
    validate(&ws).expect("date index must follow the updates");
}

#[test]
fn t3b_twice_and_t3c_once_are_date_identities() {
    let mut ws = fresh();
    let before = snapshot(&ws);
    done(run_one(&mut ws, OpKind::T3b, 1));
    done(run_one(&mut ws, OpKind::T3b, 2));
    assert_eq!(before, snapshot(&ws));
    done(run_one(&mut ws, OpKind::T3c, 3));
    assert_eq!(before, snapshot(&ws), "4 toggles are 2 round trips");
    validate(&ws).unwrap();
}

#[test]
fn t4_counts_document_chars_exactly() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    // Expected: per base assembly, per *bag occurrence* of a composite
    // part, the 'I' count of its document.
    let mut expect = 0i64;
    for (_, base) in ws.bases.store.iter() {
        for comp in &base.components {
            let c = ws.composites.store.get(comp.raw()).unwrap();
            let d = ws.documents.store.get(c.doc.raw()).unwrap();
            expect += stmbench7::data::text::count_char(&d.text, 'I') as i64;
        }
    }
    assert_eq!(done(run_one(&mut ws, OpKind::T4, 1)), expect);
}

#[test]
fn t5_twice_restores_documents_and_t4_agrees() {
    let mut ws = fresh();
    let t4_before = done(run_one(&mut ws, OpKind::T4, 1));
    let docs_before = snapshot(&ws).4;
    let replaced = done(run_one(&mut ws, OpKind::T5, 2));
    assert!(replaced > 0);
    done(run_one(&mut ws, OpKind::T5, 3));
    assert_eq!(docs_before, snapshot(&ws).4);
    assert_eq!(done(run_one(&mut ws, OpKind::T4, 4)), t4_before);
}

// ---------------------------------------------------------------------------
// Short traversals
// ---------------------------------------------------------------------------

#[test]
fn st1_returns_x_plus_y_of_one_part_and_never_fails_on_fresh_builds() {
    let mut ws = fresh();
    for seed in 0..50 {
        let v = done(run_one(&mut ws, OpKind::St1, seed));
        // x and y are drawn from [0, 100000).
        assert!((0..200_000).contains(&v), "seed {seed}: {v} out of range");
    }
}

#[test]
fn st6_swaps_exactly_one_part() {
    let mut ws = fresh();
    let before = snapshot(&ws);
    done(run_one(&mut ws, OpKind::St6, 7));
    let after = snapshot(&ws);
    let changed: Vec<_> = before
        .0
        .iter()
        .zip(&after.0)
        .filter(|(a, b)| a != b)
        .collect();
    assert_eq!(changed.len(), 1, "exactly one part must change");
    let (old, new) = (&changed[0].0 .1, &changed[0].1 .1);
    assert_eq!((old.x, old.y), (new.y, new.x));
    // Everything else is untouched.
    assert_eq!(before.1, after.1);
    assert_eq!(before.5, after.5);
}

#[test]
fn st2_counts_within_one_document() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    // Upper bound: the largest 'I' count over all documents.
    let max_count = ws
        .documents
        .store
        .iter()
        .map(|(_, d)| stmbench7::data::text::count_char(&d.text, 'I') as i64)
        .max()
        .unwrap();
    for seed in 0..20 {
        let v = done(run_one(&mut ws, OpKind::St2, seed));
        assert!((0..=max_count).contains(&v));
    }
}

#[test]
fn st7_twice_is_identity_on_documents() {
    let mut ws = fresh();
    let before = snapshot(&ws);
    let first = done(run_one(&mut ws, OpKind::St7, 9));
    assert!(first > 0, "documents contain replaceable phrases");
    let second = done(run_one(&mut ws, OpKind::St7, 9));
    assert_eq!(first, second);
    assert_eq!(before, snapshot(&ws));
}

#[test]
fn st3_success_visits_between_tree_height_and_all_complexes() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let mut succeeded = false;
    for seed in 0..100 {
        if let OpOutcome::Done(v) = run_one(&mut ws, OpKind::St3, seed) {
            succeeded = true;
            // At least the direct chain to the root, at most every
            // complex assembly.
            assert!(
                v >= i64::from(p.assembly_levels) - 1,
                "chain too short: {v}"
            );
            assert!(v <= p.initial_complexes() as i64);
        }
    }
    assert!(succeeded, "ST3 must sometimes hit an existing part");
}

#[test]
fn st8_twice_is_identity_on_assemblies() {
    let mut ws = fresh();
    let before = snapshot(&ws);
    let mut seed_hit = None;
    for seed in 0..100 {
        if let OpOutcome::Done(_) = run_one(&mut ws, OpKind::St8, seed) {
            seed_hit = Some(seed);
            break;
        }
    }
    let seed = seed_hit.expect("ST8 must sometimes hit");
    assert_ne!(before.3, snapshot(&ws).3, "ancestor dates toggled");
    done(run_one(&mut ws, OpKind::St8, seed));
    assert_eq!(before, snapshot(&ws), "same path toggles back");
}

#[test]
fn st4_is_deterministic_and_bounded() {
    let p = StructureParams::tiny();
    let run = |seed| {
        let mut ws = Workspace::build(p.clone(), 5);
        done(run_one(&mut ws, OpKind::St4, seed))
    };
    // 100 title lookups, each visiting every base assembly using the
    // document's composite part.
    let max_used_in: i64 = {
        let ws = Workspace::build(p.clone(), 5);
        ws.composites
            .store
            .iter()
            .map(|(_, c)| c.used_in.len() as i64)
            .sum()
    };
    for seed in [1, 2, 3] {
        let v = run(seed);
        assert!((0..=100 * max_used_in).contains(&v));
        assert_eq!(v, run(seed), "same seed, same titles, same count");
    }
}

#[test]
fn st9_visits_the_whole_graph_of_one_composite() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    for seed in 0..20 {
        // Graphs are ring-connected, so the DFS reaches every part.
        assert_eq!(
            done(run_one(&mut ws, OpKind::St9, seed)),
            p.atomics_per_comp as i64
        );
    }
}

#[test]
fn st10_twice_is_identity() {
    let mut ws = fresh();
    let before = snapshot(&ws);
    assert!(done(run_one(&mut ws, OpKind::St10, 3)) > 0);
    done(run_one(&mut ws, OpKind::St10, 3));
    assert_eq!(before, snapshot(&ws));
}

// ---------------------------------------------------------------------------
// Short operations
// ---------------------------------------------------------------------------

#[test]
fn op1_processes_at_most_ten_deterministically() {
    let p = StructureParams::tiny();
    for seed in 0..10 {
        let run = |seed| {
            let mut ws = Workspace::build(p.clone(), 5);
            done(run_one(&mut ws, OpKind::Op1, seed))
        };
        let v = run(seed);
        assert!((0..=10).contains(&v));
        assert_eq!(v, run(seed));
    }
}

#[test]
fn op9_and_op10_conserve_xy_sums() {
    let mut ws = fresh();
    let sum = xy_sum(&ws);
    for seed in 0..20 {
        run_one(&mut ws, OpKind::Op9, seed);
        run_one(&mut ws, OpKind::Op10, seed);
    }
    assert_eq!(xy_sum(&ws), sum, "swap(x, y) conserves x + y");
}

#[test]
fn swap_family_conserves_xy_sums_globally() {
    let mut ws = fresh();
    let sum = xy_sum(&ws);
    for (seed, op) in [
        OpKind::T2a,
        OpKind::T2b,
        OpKind::T2c,
        OpKind::St6,
        OpKind::St10,
        OpKind::Op9,
        OpKind::Op10,
    ]
    .into_iter()
    .enumerate()
    {
        run_one(&mut ws, op, seed as u64);
        assert_eq!(xy_sum(&ws), sum, "{} broke the invariant", op.name());
    }
}

#[test]
fn op15_keeps_the_date_index_coherent_and_dates_near() {
    let mut ws = fresh();
    let before = snapshot(&ws);
    let mut moved = 0i64;
    for seed in 0..20 {
        moved += done(run_one(&mut ws, OpKind::Op15, seed));
        validate(&ws).expect("index must follow every date update");
    }
    assert!(moved > 0, "OP15 must hit parts");
    // Dates only ever toggle by one.
    for ((_, old), (_, new)) in before.0.iter().zip(ws.atomics.store.iter()) {
        assert!((old.build_date - new.build_date).abs() <= 1);
    }
}

#[test]
fn op6_returns_fanout_or_zero_for_the_root() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let root = ws.module.design_root.raw();
    let mut saw_nonroot = false;
    for seed in 0..60 {
        let mut ctx = OpCtx::new(p.clone(), seed);
        let picked = ctx.random_complex_raw();
        match run_one(&mut ws, OpKind::Op6, seed) {
            OpOutcome::Done(0) => assert_eq!(picked, root, "only the root has no siblings"),
            OpOutcome::Done(v) => {
                // On a fresh tree every non-root level is fully populated.
                assert_eq!(v, p.assembly_fanout as i64);
                saw_nonroot = true;
            }
            OpOutcome::Fail(reason) => assert!(reason.contains("not found")),
        }
    }
    assert!(saw_nonroot);
}

#[test]
fn op7_returns_fanout_on_fresh_trees() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let mut hits = 0;
    for seed in 0..60 {
        match run_one(&mut ws, OpKind::Op7, seed) {
            OpOutcome::Done(v) => {
                assert_eq!(v, p.assembly_fanout as i64);
                hits += 1;
            }
            OpOutcome::Fail(reason) => assert!(reason.contains("not found")),
        }
    }
    assert!(hits > 0);
}

#[test]
fn op8_returns_comps_per_base_on_fresh_trees() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let mut hits = 0;
    for seed in 0..60 {
        match run_one(&mut ws, OpKind::Op8, seed) {
            OpOutcome::Done(v) => {
                assert_eq!(v, p.comps_per_base as i64, "bag size is fixed initially");
                hits += 1;
            }
            OpOutcome::Fail(reason) => assert!(reason.contains("not found")),
        }
    }
    assert!(hits > 0);
}

#[test]
fn op12_op13_op14_double_runs_are_identities() {
    for op in [OpKind::Op12, OpKind::Op13, OpKind::Op14] {
        let mut ws = fresh();
        let before = snapshot(&ws);
        // Find a seed where the operation completes with work done.
        let mut seed_hit = None;
        for seed in 0..100 {
            if let OpOutcome::Done(v) = run_one(&mut ws, op, seed) {
                if v > 0 {
                    seed_hit = Some(seed);
                    break;
                }
            }
        }
        let seed = seed_hit.unwrap_or_else(|| panic!("{} never completed", op.name()));
        assert_ne!(before, snapshot(&ws), "{} must mutate", op.name());
        done(run_one(&mut ws, op, seed));
        assert_eq!(before, snapshot(&ws), "{} twice must restore", op.name());
    }
}

// ---------------------------------------------------------------------------
// Cross-cutting properties
// ---------------------------------------------------------------------------

#[test]
fn every_operation_is_deterministic_in_its_seed() {
    let p = StructureParams::tiny();
    for &op in OpKind::ALL {
        let run = |seed| {
            let mut ws = Workspace::build(p.clone(), 5);
            run_one(&mut ws, op, seed)
        };
        assert_eq!(run(11), run(11), "{} diverged", op.name());
    }
}

#[test]
fn sm1_fails_with_the_documented_reason_when_the_pool_fills() {
    let p = StructureParams::tiny();
    let mut ws = Workspace::build(p.clone(), 5);
    let headroom = p.max_comps() as usize - p.library_size;
    for i in 0..headroom {
        assert!(
            run_one(&mut ws, OpKind::Sm1, i as u64).is_done(),
            "creation {i} of {headroom} must succeed"
        );
    }
    match run_one(&mut ws, OpKind::Sm1, 999) {
        OpOutcome::Fail(reason) => assert!(reason.contains("maximum number of composite parts")),
        OpOutcome::Done(_) => panic!("pool must be exhausted"),
    }
    validate(&ws).unwrap();
}

#[test]
fn read_only_operations_never_modify_the_structure() {
    let mut ws = fresh();
    let before = snapshot(&ws);
    for &op in OpKind::ALL.iter().filter(|o| o.is_read_only()) {
        for seed in 0..5 {
            run_one(&mut ws, op, seed);
        }
        assert_eq!(
            before,
            snapshot(&ws),
            "{} claims to be read-only but mutated state",
            op.name()
        );
    }
}
