//! Deterministic cross-backend smoke test: one small single-thread
//! `FixedOps` run per strategy, checked against the sequential oracle.
//!
//! This is the fast confidence check (`cargo test --test
//! smoke_all_backends` finishes in well under a second) that every
//! synchronization strategy still boots, executes the full operation
//! mix, passes the structure validator, and leaves a final structure
//! identical to the sequential oracle's. The heavyweight equivalence
//! sweep lives in `backends_agree.rs`.

use stmbench7::backend::Backend;
use stmbench7::core::{run_benchmark, BenchConfig, WorkloadType};
use stmbench7::data::{validate, Census, StructureParams, Workspace};
use stmbench7::{strategy_catalog, AnyBackend, BackendChoice};

const OPS: u64 = 120;
const OP_SEED: u64 = 2026;
const BUILD_SEED: u64 = 7;

/// The nine headline strategies: every lock backend, both delegation
/// backends and every STM runtime, one configuration each, drawn from
/// the canonical catalog with `sequential` (the oracle) guaranteed
/// first.
fn smoke_choices() -> Vec<(&'static str, BackendChoice)> {
    let headline = [
        "sequential",
        "coarse",
        "medium",
        "fine",
        "flatcomb",
        "rcl",
        "astm",
        "tl2",
        "norec",
    ];
    let choices: Vec<_> = strategy_catalog()
        .into_iter()
        .filter(|(name, _)| headline.contains(name))
        .collect();
    assert_eq!(choices.len(), headline.len(), "catalog lost a strategy");
    assert_eq!(choices[0].0, "sequential", "oracle must run first");
    choices
}

/// Runs one strategy and returns its per-op outcome counts plus the
/// census of the exported (validated) structure.
fn run_smoke(
    choice: BackendChoice,
    name: &str,
    workload: WorkloadType,
) -> (Vec<(u64, u64)>, Census) {
    let params = StructureParams::tiny();
    let ws = Workspace::build(params.clone(), BUILD_SEED);
    let backend = AnyBackend::build(choice, ws);
    let cfg = BenchConfig::deterministic(workload, OPS, OP_SEED);
    let report = run_benchmark(&backend, &params, &cfg);
    assert_eq!(
        report.total_started(),
        OPS,
        "{name}: expected exactly {OPS} operations to start"
    );
    let counts = report
        .per_op
        .iter()
        .map(|o| (o.completed, o.failed))
        .collect();
    let census = validate(&backend.export())
        .unwrap_or_else(|e| panic!("{name}: exported structure fails validation: {e}"));
    (counts, census)
}

fn smoke(workload: WorkloadType) {
    let mut oracle: Option<(Vec<(u64, u64)>, Census)> = None;
    for (name, choice) in smoke_choices() {
        let (counts, census) = run_smoke(choice, name, workload);
        match &oracle {
            None => {
                assert!(
                    counts.iter().any(|(completed, _)| *completed > 0),
                    "{name}: oracle completed nothing"
                );
                oracle = Some((counts, census));
            }
            Some((oracle_counts, oracle_census)) => {
                assert_eq!(
                    &counts, oracle_counts,
                    "{name} disagrees with the sequential oracle on per-op outcomes"
                );
                assert_eq!(
                    &census, oracle_census,
                    "{name} disagrees with the sequential oracle on the final census"
                );
            }
        }
    }
}

#[test]
fn smoke_read_write() {
    smoke(WorkloadType::ReadWrite);
}

#[test]
fn smoke_write_dominated() {
    smoke(WorkloadType::WriteDominated);
}
