//! STM design lab: put the three STM runtime designs side by side under
//! a contended read-write workload and read their cost profiles off the
//! statistics counters.
//!
//! * **ASTM (invisible reads)** — validation steps explode with read-set
//!   size (the O(k²) pathology of the paper's §5);
//! * **ASTM (visible reads)** — zero validation, but every read mutates
//!   a locator and readers/writers arbitrate eagerly;
//! * **TL2** — commit-time validation against a global version clock;
//! * **NOrec** — value-based validation, zero per-object metadata,
//!   single-writer commits.
//!
//! ```sh
//! cargo run --release --example stm_design_lab
//! ```

use std::time::{Duration, Instant};

use stmbench7::backend::{Backend, Granularity, StmBackend};
use stmbench7::core::{run_benchmark, BenchConfig, OpFilter, RunMode, WorkloadType};
use stmbench7::data::{validate, StructureParams, Workspace};
use stmbench7::stm::astm::AstmConfig;
use stmbench7::stm::tl2::Tl2Config;
use stmbench7::stm::{AstmRuntime, NorecRuntime, Tl2Runtime};

fn bench<B: Backend>(backend: &B, params: &StructureParams) {
    let cfg = BenchConfig {
        threads: 4,
        mode: RunMode::Timed(Duration::from_millis(600)),
        workload: WorkloadType::ReadWrite,
        long_traversals: false,
        structure_mods: true,
        filter: OpFilter::none(),
        seed: 7,
        histograms: false,
        recorder: stmbench7::obs::Recorder::default(),

        window_ms: None,
    };
    let t0 = Instant::now();
    let report = run_benchmark(backend, params, &cfg);
    let wall = t0.elapsed().as_secs_f64();
    let stats = backend.stm_stats().expect("STM backends report stats");
    validate(&backend.export()).expect("structure intact");
    println!(
        "{:>14} {:>9.0} {:>9} {:>9} {:>7.1}% {:>13} {:>9}",
        backend.name(),
        report.total_completed() as f64 / wall,
        stats.commits,
        stats.aborts,
        100.0 * stats.abort_ratio(),
        stats.validation_steps,
        stats.clones,
    );
}

fn main() {
    let params = StructureParams::tiny();
    let ws = Workspace::build(params.clone(), 42);

    println!("4 threads, read-write workload, long traversals off, 0.6 s each:\n");
    println!(
        "{:>14} {:>9} {:>9} {:>9} {:>8} {:>13} {:>9}",
        "runtime", "ops/s", "commits", "aborts", "abort%", "valid.steps", "clones"
    );

    bench(
        &StmBackend::from_workspace(
            &ws,
            AstmRuntime::new(AstmConfig::default()),
            Granularity::Monolithic,
        ),
        &params,
    );
    bench(
        &StmBackend::from_workspace(
            &ws,
            AstmRuntime::new(AstmConfig {
                visible_reads: true,
                ..AstmConfig::default()
            }),
            Granularity::Monolithic,
        ),
        &params,
    );
    bench(
        &StmBackend::from_workspace(
            &ws,
            Tl2Runtime::new(Tl2Config::default()),
            Granularity::Sharded,
        ),
        &params,
    );
    bench(
        &StmBackend::from_workspace(&ws, NorecRuntime::new(), Granularity::Sharded),
        &params,
    );

    println!(
        "\nReading the table: invisible-read ASTM burns cycles in \
         validation steps;\nvisible reads trade them for locator traffic; \
         TL2 and NOrec validate\nlazily and cheaply — the §5 remedy classes."
    );
}
