//! Building a custom workload: operation filters, expected-ratio
//! introspection and TTC histograms.
//!
//! The paper deliberately outputs *many* numbers instead of one; this
//! example shows how to drive the same machinery programmatically — here
//! for a "document server" profile that disables the structure-heavy
//! operations and watches document-operation latency histograms.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use stmbench7::core::ops::OpKind;
use stmbench7::core::{run_benchmark, BenchConfig, OpFilter, WorkloadMix, WorkloadType};
use stmbench7::data::{StructureParams, Workspace};
use stmbench7::{AnyBackend, BackendChoice};

fn main() {
    let params = StructureParams::small();

    // A document-server profile: no whole-structure sweeps, no part
    // creation/deletion — just index lookups, path traversals and text
    // work. Everything else follows Table 2 semantics automatically.
    let filter = OpFilter::none()
        .disable(OpKind::Q7)
        .disable(OpKind::Sm1)
        .disable(OpKind::Sm2)
        .disable(OpKind::Sm7)
        .disable(OpKind::Sm8);

    // Inspect the ratios the solver derives before running anything.
    let mix = WorkloadMix::compute(WorkloadType::ReadWrite, false, true, &filter);
    println!("derived operation ratios (non-zero):");
    for &op in OpKind::ALL {
        let p = mix.expected(op);
        if p > 0.0 {
            print!("  {}={:.3}", op.name(), p);
        }
    }
    println!("\n");

    let ws = Workspace::build(params.clone(), 3);
    let backend = AnyBackend::build(
        BackendChoice::Tl2 {
            granularity: stmbench7::backend::Granularity::Sharded,
        },
        ws,
    );
    let mut cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 1500, 17);
    cfg.threads = 2;
    cfg.long_traversals = false;
    cfg.filter = filter;
    let report = run_benchmark(&backend, &params, &cfg);

    println!("document operations, TTC histograms (ms,count …):");
    for op in [OpKind::St2, OpKind::St7, OpKind::St4] {
        let r = &report.per_op[op.index()];
        let pairs = r
            .hist
            .pairs()
            .iter()
            .map(|(ms, c)| format!("{ms},{c}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("  TTC histogram for {}: {}", op.name(), pairs);
    }
    let (e, f) = report.total_errors();
    println!(
        "\nthroughput {:.0} op/s, sample errors E={e:.3} F={f:.3} (small E = the mix \
         matches the request)",
        report.throughput()
    );
    if let Some(stm) = &report.stm {
        println!(
            "tl2: {} commits, {} aborts (ratio {:.4})",
            stm.commits,
            stm.aborts,
            stm.abort_ratio()
        );
    }
}
