//! A tour of every synchronization strategy: run the identical
//! deterministic workload on each backend, check they all agree (the
//! benchmark's core correctness property), and show what each strategy
//! paid for its answer.
//!
//! ```sh
//! cargo run --release --example strategy_tour
//! ```

use std::time::Instant;

use stmbench7::backend::{Backend, Granularity};
use stmbench7::core::{run_benchmark, BenchConfig, WorkloadType};
use stmbench7::data::{validate, StructureParams, Workspace};
use stmbench7::stm::ContentionManager;
use stmbench7::{AnyBackend, BackendChoice};

fn strategies() -> Vec<BackendChoice> {
    vec![
        BackendChoice::Sequential,
        BackendChoice::Coarse,
        BackendChoice::Medium,
        BackendChoice::Fine,
        BackendChoice::Astm {
            granularity: Granularity::Monolithic,
            cm: ContentionManager::Polka,
            visible: false,
        },
        BackendChoice::Tl2 {
            granularity: Granularity::Sharded,
        },
        BackendChoice::Norec {
            granularity: Granularity::Sharded,
        },
    ]
}

fn main() {
    let params = StructureParams::tiny();
    let cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 800, 42);

    println!("Running 800 identical operations under every strategy:\n");
    println!(
        "{:>14} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "strategy", "wall ms", "completed", "failed", "stm aborts", "census ok"
    );

    let mut reference: Option<(u64, u64)> = None;
    for choice in strategies() {
        let ws = Workspace::build(params.clone(), 9);
        let backend = AnyBackend::build(choice, ws);
        let t0 = Instant::now();
        let report = run_benchmark(&backend, &params, &cfg);
        let ms = t0.elapsed().as_secs_f64() * 1e3;

        let key = (report.total_completed(), report.total_failed());
        match &reference {
            None => reference = Some(key),
            Some(expected) => assert_eq!(
                &key,
                expected,
                "{} disagrees with the sequential oracle",
                backend.name()
            ),
        }

        let aborts = backend
            .stm_stats()
            .map(|s| s.aborts.to_string())
            .unwrap_or_else(|| "-".into());
        let valid = validate(&backend.export()).is_ok();
        println!(
            "{:>14} {:>9.1} {:>9} {:>9} {:>11} {:>9}",
            backend.name(),
            ms,
            report.total_completed(),
            report.total_failed(),
            aborts,
            valid
        );

        if let Some(fine) = backend.fine_stats() {
            println!(
                "{:>14} planned={} exclusive={} locks={} retries={} fallbacks={}",
                "└ fine:",
                fine.planned_ops,
                fine.exclusive_ops,
                fine.locks_acquired,
                fine.plan_retries,
                fine.fallbacks
            );
        }
    }

    println!("\nAll strategies produced identical per-operation outcomes.");
    println!("Single-threaded, the strategies differ only in overhead:");
    println!("  coarse     — one RwLock acquisition per operation;");
    println!("  medium     — up to ten group locks per operation;");
    println!("  fine       — runs every operation twice (discover + execute);");
    println!("  astm/tl2/norec — full STM instrumentation per object access.");
}
