//! Quickstart: build the STMBench7 structure, run a short read-write
//! benchmark under coarse-grained locking, and print the Appendix-A
//! report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stmbench7::core::{run_benchmark, BenchConfig, WorkloadType};
use stmbench7::data::{validate, StructureParams, Workspace};
use stmbench7::{AnyBackend, BackendChoice};

fn main() {
    // 1. Pick a structure size. `small` preserves every ratio of the
    //    paper's "medium OO7" sizing at laptop scale; use
    //    `StructureParams::standard()` for the authors' released sizing
    //    (100 000 atomic parts).
    let params = StructureParams::small();

    // 2. Build the shared structure deterministically and show what we
    //    got (Figure 1 of the paper).
    let ws = Workspace::build(params.clone(), 42);
    let census = validate(&ws).expect("fresh build is valid");
    println!("built: {census:?}");

    // 3. Wrap it in a synchronization strategy (coarse = one RwLock).
    let backend = AnyBackend::build(BackendChoice::Coarse, ws);

    // 4. Run 2 000 operations of the read-write workload on two threads.
    let mut cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 1000, 7);
    cfg.threads = 2;
    let report = run_benchmark(&backend, &params, &cfg);

    // 5. The report mirrors the paper's output sections.
    print!("{}", report.render(false));
}
