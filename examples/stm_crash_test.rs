//! The §5 "crash test": why a straightforward STM port of STMBench7 is
//! orders of magnitude slower than locking, and what fixes it.
//!
//! Reproduces, at example scale, the paper's diagnosis:
//!
//! 1. T1 under the ASTM-like runtime does O(k²) validation work for its
//!    k-object read set (invisible reads + incremental validation) —
//!    watch the `validation steps` counter;
//! 2. OP11 under monolithic granularity clones the entire manual to
//!    change one character class;
//! 3. a TL2-style runtime (global clock) and sharding (the §5 remedy)
//!    remove both costs.
//!
//! ```sh
//! cargo run --release --example stm_crash_test
//! ```

use std::time::Instant;

use stmbench7::backend::{Backend, Granularity, SequentialBackend, StmBackend, TxOperation};
use stmbench7::core::access_spec;
use stmbench7::core::ops::{run_op, OpCtx, OpKind};
use stmbench7::data::{OpOutcome, Sb7Tx, StructureParams, TxR, Workspace};
use stmbench7::stm::{AstmRuntime, Tl2Runtime};

struct Runner<'c> {
    op: OpKind,
    ctx: &'c mut OpCtx,
}

impl TxOperation<OpOutcome> for Runner<'_> {
    fn run<T: Sb7Tx>(&mut self, tx: &mut T) -> TxR<OpOutcome> {
        run_op(self.op, tx, self.ctx)
    }
}

fn time_op<B: Backend>(backend: &B, params: &StructureParams, op: OpKind) -> (f64, u64, u64) {
    let before = backend.stm_stats().unwrap_or_default();
    let spec = access_spec(op, params.assembly_levels);
    let mut ctx = OpCtx::new(params.clone(), 5);
    let t0 = Instant::now();
    backend.execute(&spec, &mut Runner { op, ctx: &mut ctx });
    let after = backend.stm_stats().unwrap_or_default();
    (
        t0.elapsed().as_secs_f64() * 1e3,
        after.validation_steps - before.validation_steps,
        after.clones - before.clones,
    )
}

fn main() {
    let params = StructureParams::small();
    let ws = Workspace::build(params.clone(), 1);
    println!(
        "crash test over {} atomic parts (manual: {} KiB)\n",
        params.initial_atomics(),
        params.manual_size / 1024
    );

    println!(
        "{:<28} {:>10} {:>14} {:>8}",
        "configuration", "T1 [ms]", "valid. steps", "clones"
    );
    let seq = SequentialBackend::new(ws.clone());
    let (ms, _, _) = time_op(&seq, &params, OpKind::T1);
    println!(
        "{:<28} {ms:>10.2} {:>14} {:>8}",
        "no synchronization", "-", "-"
    );

    let astm = StmBackend::from_workspace(&ws, AstmRuntime::default(), Granularity::Monolithic);
    let (ms, steps, clones) = time_op(&astm, &params, OpKind::T1);
    println!(
        "{:<28} {ms:>10.2} {steps:>14} {clones:>8}",
        "astm (paper config)"
    );

    let tl2 = StmBackend::from_workspace(&ws, Tl2Runtime::default(), Granularity::Monolithic);
    let (ms, steps, clones) = time_op(&tl2, &params, OpKind::T1);
    println!(
        "{:<28} {ms:>10.2} {steps:>14} {clones:>8}",
        "tl2 (the §5 remedy)"
    );

    println!(
        "\n{:<28} {:>10} {:>14} {:>8}",
        "configuration", "OP11 [ms]", "valid. steps", "clones"
    );
    let astm_mono =
        StmBackend::from_workspace(&ws, AstmRuntime::default(), Granularity::Monolithic);
    let (ms, steps, clones) = time_op(&astm_mono, &params, OpKind::Op11);
    println!(
        "{:<28} {ms:>10.3} {steps:>14} {clones:>8}",
        "astm + monolithic manual"
    );
    let astm_shard = StmBackend::from_workspace(&ws, AstmRuntime::default(), Granularity::Sharded);
    let (ms, steps, clones) = time_op(&astm_shard, &params, OpKind::Op11);
    println!(
        "{:<28} {ms:>10.3} {steps:>14} {clones:>8}",
        "astm + chunked manual"
    );

    println!(
        "\nReading the numbers: ASTM's T1 validation steps grow quadratically with the\n\
         read set (the paper's half-hour traversals); TL2 validates in O(k). One OP11\n\
         under a monolithic manual clones the whole text; chunking touches only the\n\
         chunks that contain the character being swapped."
    );
}
