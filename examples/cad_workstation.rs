//! A CAD-workstation scenario — the application class the paper's
//! introduction motivates (CAD/CAM/CASE tools over a large design
//! library).
//!
//! Designers mostly *read*: they inspect assemblies, search documents and
//! follow part graphs; occasionally they edit attributes, and a build
//! daemon periodically rewrites documentation. That is exactly the
//! read-dominated workload with long traversals enabled. We run it under
//! the medium-grained strategy (Figure 5) and report what a workstation
//! operator would care about: interactive-operation latency percentiles
//! next to the batch traversal cost.
//!
//! ```sh
//! cargo run --release --example cad_workstation
//! ```

use std::time::Duration;

use stmbench7::core::{run_benchmark, BenchConfig, Category, OpFilter, RunMode, WorkloadType};
use stmbench7::data::{StructureParams, Workspace};
use stmbench7::{AnyBackend, BackendChoice};

fn main() {
    let params = StructureParams::small();
    let ws = Workspace::build(params.clone(), 2026);
    let backend = AnyBackend::build(BackendChoice::Medium, ws);

    let cfg = BenchConfig {
        threads: 4, // Four designers sharing the model.
        mode: RunMode::Timed(Duration::from_secs(3)),
        workload: WorkloadType::ReadDominated,
        long_traversals: true, // The nightly consistency sweep runs too.
        structure_mods: true,  // Parts get added/retired during the day.
        filter: OpFilter::none(),
        seed: 9,
        histograms: true,
        recorder: stmbench7::obs::Recorder::default(),

        window_ms: None,
    };
    let report = run_benchmark(&backend, &params, &cfg);

    println!(
        "CAD session over {} atomic parts, 4 designers, 3 s:",
        params.initial_atomics()
    );
    println!(
        "  sustained rate: {:.0} operations/s\n",
        report.throughput()
    );
    println!("  interactive operations (latency percentiles):");
    for op in report
        .per_op
        .iter()
        .filter(|o| o.op.category() == Category::ShortOperation && o.completed > 0)
    {
        let p50 = op.hist.percentile(50.0).unwrap_or(0);
        let p99 = op.hist.percentile(99.0).unwrap_or(0);
        println!(
            "    {:<5} p50 {:>4} ms   p99 {:>4} ms   max {:>8.2} ms   ({} runs)",
            op.op.name(),
            p50,
            p99,
            op.max_ms(),
            op.completed
        );
    }
    println!("\n  batch sweeps (long traversals):");
    for op in report
        .per_op
        .iter()
        .filter(|o| o.op.category() == Category::LongTraversal && o.completed > 0)
    {
        println!(
            "    {:<5} mean {:>9.2} ms   max {:>9.2} ms   ({} runs)",
            op.op.name(),
            op.mean_ms(),
            op.max_ms(),
            op.completed
        );
    }
    let (_, failed, _) = report.category_rollup(Category::StructureModification);
    println!(
        "\n  structure modifications: {} applied, {} failed benignly",
        report.category_rollup(Category::StructureModification).0,
        failed
    );
}
