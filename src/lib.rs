//! STMBench7 in Rust — a reproduction of Guerraoui, Kapałka and Vitek,
//! *"STMBench7: A Benchmark for Software Transactional Memory"*
//! (EuroSys 2007).
//!
//! This facade crate re-exports the whole workspace: the data structure,
//! the STM runtimes, the synchronization backends (including
//! [`AnyBackend`], the single dispatchable type over every strategy), the
//! benchmark core, and the [`lab`] experiment harness used by the
//! `stmbench7 lab` subcommand and the sweep binaries.
//!
//! # Quickstart
//!
//! ```
//! use stmbench7::data::{StructureParams, Workspace};
//! use stmbench7::backend::{Backend, CoarseBackend};
//! use stmbench7::core::{run_benchmark, BenchConfig, WorkloadType};
//!
//! let params = StructureParams::tiny();
//! let ws = Workspace::build(params.clone(), 42);
//! let backend = CoarseBackend::new(ws);
//! let cfg = BenchConfig::deterministic(WorkloadType::ReadWrite, 100, 1);
//! let report = run_benchmark(&backend, &params, &cfg);
//! assert_eq!(report.total_started(), 100);
//! ```

pub use stmbench7_backend as backend;
pub use stmbench7_core as core;
pub use stmbench7_data as data;
pub use stmbench7_lab as lab;
pub use stmbench7_net as net;
pub use stmbench7_obs as obs;
pub use stmbench7_service as service;
pub use stmbench7_stm as stm;

pub use stmbench7_backend::{strategy_catalog, AnyBackend, BackendChoice};

/// Parses a structure-size preset name (`tiny`, `small`, `standard`,
/// `paper-full`).
pub fn parse_preset(s: &str) -> Option<stmbench7_data::StructureParams> {
    stmbench7_data::StructureParams::parse(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert!(parse_preset("tiny").is_some());
        assert!(parse_preset("small").is_some());
        assert!(parse_preset("standard").is_some());
        assert!(parse_preset("bogus").is_none());
    }

    #[test]
    fn preset_names_round_trip() {
        for name in ["tiny", "small", "standard", "paper-full"] {
            let params = parse_preset(name).unwrap();
            assert_eq!(params.preset_name(), Some(name));
        }
    }

    #[test]
    fn facade_reexports_choice_types() {
        assert_eq!(BackendChoice::parse("coarse"), Some(BackendChoice::Coarse));
        assert_eq!(strategy_catalog().len(), 13);
    }
}
