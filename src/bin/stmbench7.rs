//! The STMBench7 command-line interface, mirroring Appendix A.1 of the
//! paper:
//!
//! ```text
//! stmbench7 -t numThreads -l length -w r|rw|w -g coarse|medium|...
//!           [--no-traversals] [--no-sms] [--ttc-histograms]
//! ```
//!
//! Extensions beyond the paper's flags: `-s` structure preset, `--seed`,
//! `--ops` (deterministic fixed-operation runs), `--astm-friendly` (the
//! §5 operation filter), `--cm` (contention manager) and `--csv`; plus
//! the `lab` subcommand (`stmbench7 lab <spec>`), which runs a named
//! experiment grid, writes versioned JSON results, and can gate against
//! a committed baseline.

use std::process::ExitCode;
use std::time::Duration;

use stmbench7::backend::Backend;
use stmbench7::core::{run_benchmark, BenchConfig, OpFilter, RunMode, WorkloadType};
use stmbench7::data::{validate, StructureParams, Workspace};
use stmbench7::lab::{check_slos, compare_documents, registry, run_spec, Tolerance};
use stmbench7::net::{drive, serve_net, DriveConfig};
use stmbench7::obs::{
    chrome_trace_json, summarize, top_spans, Event, EventKind, Layer, Recorder, Trace,
};
use stmbench7::service::{serve, Admission, Affinity, Schedule, ServeConfig};
use stmbench7::stm::ContentionManager;
use stmbench7::{parse_preset, AnyBackend, BackendChoice};

const USAGE: &str = "\
stmbench7 — the EuroSys 2007 STM benchmark, in Rust

USAGE:
    stmbench7 [OPTIONS]

OPTIONS (paper Appendix A.1):
    -t <num>            number of threads                  [default: 1]
    -l <seconds>        benchmark length                   [default: 10]
    -w r|rw|w|uNN       workload type; uNN = custom NN%
                        updates (extension)                [default: r]
    -g <strategy>       synchronization strategy           [default: coarse]
                        one of: sequential, coarse, medium, fine,
                        flatcomb, rcl, astm, astm-sharded, astm-visible,
                        tl2, tl2-sharded, norec, norec-sharded
    --no-traversals     disable long traversals
    --no-sms            disable structure modification operations
    --ttc-histograms    print TTC (latency) histograms

EXTENSIONS:
    -s <preset>         structure size: tiny, small, standard, paper-full
                                                           [default: small]
    --shards <num>      split every index into N shards (1..=64); backends
                        with per-shard locks/variables scale their lock
                        sets with it                       [default: 1]
    --ops <num>         run a fixed number of operations per thread
                        instead of a timed run
    --seed <num>        RNG seed                           [default: 1]
    --cm <name>         ASTM contention manager: aggressive, suicide,
                        backoff, karma, timestamp, polka   [default: polka]
    --astm-friendly     apply the paper's §5 operation filter
    --validate          validate the structure after the run
    --csv <file>        append per-operation CSV rows to <file>
    --trace <file>      record a transaction-lifecycle trace and write it
                        as Chrome trace_event JSON (open in Perfetto or
                        chrome://tracing; summarize with `trace-summary`)
    --window <ms>       sample the flight recorder every <ms> ms and
                        attach a per-window timeseries (throughput,
                        latency percentiles, queue depth) to the report
    --describe          print the structure census and indexes, then exit
    -h, --help          this text

SUBCOMMANDS:
    lab <spec>          run a named experiment grid and write JSON results
                        (see `stmbench7 lab --help`)
    serve <schedule>    serve an open-loop request stream through a backend
                        (see `stmbench7 serve --help`)
    net-serve           serve STMBench7 over TCP until a shutdown frame
                        (see `stmbench7 net-serve --help`)
    net-drive <sched>   replay a schedule against a net-serve over sockets
                        (see `stmbench7 net-drive --help`)
    trace-summary <f>   aggregate a --trace file into a per-event table
                        (`--top N` lists the N slowest spans per layer)
";

const NET_SERVE_USAGE: &str = "\
stmbench7 net-serve — the wire-protocol server

USAGE:
    stmbench7 net-serve [OPTIONS]

Binds a TCP listener, decodes length-prefixed request frames, and feeds
them into the service worker pool (admission control, batching and the
queue-wait/service-time decomposition are the `serve` machinery). Runs
until a client sends the graceful-shutdown control frame, then prints
the server-side report and exits 0.

OPTIONS:
    --addr <host:port>  listen address; port 0 picks an ephemeral port
                        (printed as `listening on <addr>`)
                                                           [default: 127.0.0.1:7117]
    -g, --backend <s>   synchronization strategy           [default: coarse]
    -s <preset>         structure size                     [default: small]
    --shards <n>        split every index into N shards    [default: 1]
    -w r|rw|w|uNN       expected workload mix (report ratios only; clients
                        pick the operations)               [default: r]
    --workers <n>       worker threads                     [default: 2]
    --queue-cap <n>     request queue bound                [default: 1024]
    --admission <p>     block | reject (drop-on-full, answered with an
                        explicit rejection frame)          [default: block]
    --batch <k>         fold up to K lock-compatible requests into one
                        execution (group commit)           [default: 1]
    --affinity <a>      none | shard (route requests to workers by
                        declared primary shard, steal when idle)
                                                           [default: none]
    --seed <num>        RNG seed (structure build)         [default: 1]
    --validate          validate the structure after shutdown
    --trace <file>      record a lifecycle trace and write Chrome
                        trace_event JSON after shutdown
    --window <ms>       flight-recorder sampling window; attaches a
                        per-window timeseries to the server report
    --metrics <h:p>     also serve a Prometheus text exposition of the
                        live flight-recorder counters at
                        http://<h:p>/metrics, scrapeable mid-run (the
                        scrape rides the same event loop as the
                        benchmark traffic); implies --window 250 unless
                        --window is given; port 0 picks an ephemeral
                        port (printed as `metrics on <addr>`)
    -h, --help          this text
";

const NET_DRIVE_USAGE: &str = "\
stmbench7 net-drive — the remote load driver

USAGE:
    stmbench7 net-drive <schedule> --addr <host:port> [OPTIONS]

Replays a deterministic arrival schedule (the same closed:/open:/bursty:
schedules `serve` replays in-process) over N persistent connections, and
decomposes per-request latency into client queue wait, network round
trip, and server-reported service time.

SCHEDULES:
    closed:N            everything arrives at t=0; requires --requests
    open:RATE           fixed-rate arrivals (req/s) with slot jitter
    bursty:RATE:BURST:PERIOD_MS
                        clumped arrivals averaging RATE req/s

OPTIONS:
    --addr <host:port>  server address                     [required]
    --connections <n>   persistent connections the stream is striped
                        over (request i rides connection i mod N)
                                                           [default: 2]
    --inflight <n>      per-connection pipelining window: at most n
                        requests awaiting responses on a connection
                        (0 = unbounded, issue purely by schedule)
                                                           [default: 0]
    -w r|rw|w|uNN       workload type                      [default: r]
    --requests <n>      length of the request stream
    -l <seconds>        stream horizon (open/bursty)       [default: 5]
    --seed <num>        RNG seed                           [default: 1]
    --no-traversals     disable long traversals
    --no-sms            disable structure modification operations
    --astm-friendly     apply the paper's §5 operation filter
    --shutdown          send the graceful-shutdown frame after the run
    -h, --help          this text
";

const SERVE_USAGE: &str = "\
stmbench7 serve — open-loop, request-driven service mode

USAGE:
    stmbench7 serve <schedule> [OPTIONS]

Replays a deterministic arrival schedule into a bounded request queue
drained by a worker pool, and reports per-request latency decomposed
into queue wait vs service time (p50/p95/p99) plus reject counts.

SCHEDULES:
    closed:N            everything arrives at t=0 (N suggests --workers);
                        requires --requests
    open:RATE           fixed-rate arrivals (req/s) with deterministic
                        slot jitter
    bursty:RATE:BURST:PERIOD_MS
                        average RATE req/s, clumped: each period opens
                        with a BURST of back-to-back arrivals

OPTIONS:
    -g, --backend <s>   synchronization strategy           [default: coarse]
    -s <preset>         structure size                     [default: small]
    --shards <n>        split every index into N shards    [default: 1]
    -w r|rw|w|uNN       workload type                      [default: r]
    --workers <n>       worker threads                     [default: 2, or N
                        for closed:N]
    --queue-cap <n>     request queue bound                [default: 1024]
    --admission <p>     block | reject (drop-on-full)      [default: block]
    --batch <k>         fold up to K lock-compatible requests into one
                        execution (group commit)           [default: 1]
    --affinity <a>      none | shard (route requests to workers by
                        declared primary shard, steal when idle)
                                                           [default: none]
    --requests <n>      length of the request stream
    -l <seconds>        stream horizon (open/bursty): offer rate x seconds
                        requests                           [default: 5]
    --seed <num>        RNG seed                           [default: 1]
    --no-traversals     disable long traversals
    --no-sms            disable structure modification operations
    --astm-friendly     apply the paper's §5 operation filter
    --validate          validate the structure after the run
    --trace <file>      record a lifecycle trace and write Chrome
                        trace_event JSON after the run
    --window <ms>       flight-recorder sampling window; attaches a
                        per-window timeseries to the report
    -h, --help          this text
";

const LAB_USAGE: &str = "\
stmbench7 lab — declarative experiment harness

USAGE:
    stmbench7 lab <spec> [OPTIONS]
    stmbench7 lab --list

Runs every cell of the named spec (warmup + repetitions, each on a fresh
structure), aggregates repetitions into median/min/max/p95, writes a
versioned JSON results document, and optionally gates against a baseline.

OPTIONS:
    --list              list the built-in specs and exit
    --preset <name>     override the spec's structure preset
    --shards <n>        override the preset's index shard count (cells
                        with their own shard axis keep it)
    --secs <f>          override seconds per measured repetition
    --warmup <f>        override discarded warmup seconds per repetition
    --reps <n>          override the repetition count
    --threads <a,b,c>   override the thread axis (re-grids the cells)
    --rates <a,b,c>     override the arrival-rate axis of open-loop
                        cells (re-grids, scaling request counts so every
                        rung measures the same wall-clock window)
    --seed <n>          override the RNG seed
    --out <path>        results path    [default: results/BENCH_<spec>.json]
    --compare <path>    compare against a baseline results document;
                        exit nonzero on regression
    --tolerance <t>     allowed slowdown vs baseline: NN% or NNx
                        [default: 25%]
    --trace <dir>       run every cell with a live trace recorder and
                        write one Chrome trace_event JSON file per cell
                        into <dir> (traced cells keep their keys, so
                        --compare still matches an untraced baseline)
    --window <ms>       run every cell with a flight-recorder sampling
                        window of <ms> ms; each cell's result embeds a
                        per-window timeseries (windowed cells keep their
                        keys, like --trace)
    -h, --help          this text

Cells that declare an `slo` (a windowed p99 objective) are checked after
the run: a window breaches when its p99 exceeds the objective, and the
cell fails when more windows breach than the objective allows. Under
--compare, any failed SLO check fails the gate alongside throughput
regressions.
";

const TRACE_SUMMARY_USAGE: &str = "\
stmbench7 trace-summary — aggregate a recorded trace

USAGE:
    stmbench7 trace-summary <file> [--top N]

Reads a Chrome trace_event JSON file written by `--trace` and prints a
per-(layer, kind, name) table: event counts and, for span kinds, total
and maximum duration, heaviest row first.

With `--top N`, also lists the N slowest individual spans per layer —
the concrete worst-case operations, not aggregates.
";

/// Parses a `--window <ms>` value: the flight-recorder sampling window.
fn parse_window(v: &str) -> Result<u64, String> {
    let ms: u64 = v.parse().map_err(|e| format!("--window: {e}"))?;
    if ms == 0 {
        return Err("--window must be ≥ 1 ms".into());
    }
    Ok(ms)
}

struct Args {
    threads: usize,
    length: u64,
    ops: Option<u64>,
    workload: WorkloadType,
    backend: BackendChoice,
    params: StructureParams,
    no_traversals: bool,
    no_sms: bool,
    histograms: bool,
    astm_friendly: bool,
    validate: bool,
    seed: u64,
    csv: Option<String>,
    trace: Option<String>,
    window: Option<u64>,
    describe: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 1,
        length: 10,
        ops: None,
        workload: WorkloadType::ReadDominated,
        backend: BackendChoice::Coarse,
        params: StructureParams::small(),
        no_traversals: false,
        no_sms: false,
        histograms: false,
        astm_friendly: false,
        validate: false,
        seed: 1,
        csv: None,
        trace: None,
        window: None,
        describe: false,
    };
    let mut cm = ContentionManager::Polka;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "-t" => args.threads = value(&mut i)?.parse().map_err(|e| format!("-t: {e}"))?,
            "-l" => args.length = value(&mut i)?.parse().map_err(|e| format!("-l: {e}"))?,
            "--ops" => args.ops = Some(value(&mut i)?.parse().map_err(|e| format!("--ops: {e}"))?),
            "-w" => {
                let v = value(&mut i)?;
                args.workload = WorkloadType::parse(&v).ok_or(format!("unknown workload '{v}'"))?;
            }
            "-g" => {
                let v = value(&mut i)?;
                args.backend = BackendChoice::parse(&v).ok_or(format!("unknown strategy '{v}'"))?;
            }
            "-s" => {
                let v = value(&mut i)?;
                // Preserve a --shards that came first.
                let shards = args.params.index_shards;
                args.params = parse_preset(&v)
                    .ok_or(format!("unknown preset '{v}'"))?
                    .with_shards(shards);
            }
            "--shards" => {
                let n: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if n == 0 {
                    return Err("--shards must be ≥ 1".into());
                }
                args.params = args.params.clone().with_shards(n);
                args.params.check().map_err(|e| format!("--shards: {e}"))?;
            }
            "--cm" => {
                let v = value(&mut i)?;
                cm = ContentionManager::parse(&v)
                    .ok_or(format!("unknown contention manager '{v}'"))?;
            }
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--csv" => args.csv = Some(value(&mut i)?),
            "--trace" => args.trace = Some(value(&mut i)?),
            "--window" => args.window = Some(parse_window(&value(&mut i)?)?),
            "--no-traversals" => args.no_traversals = true,
            "--no-sms" => args.no_sms = true,
            "--ttc-histograms" => args.histograms = true,
            "--astm-friendly" => args.astm_friendly = true,
            "--validate" => args.validate = true,
            "--describe" => args.describe = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if let BackendChoice::Astm {
        granularity,
        visible,
        ..
    } = args.backend
    {
        args.backend = BackendChoice::Astm {
            granularity,
            cm,
            visible,
        };
    }
    Ok(args)
}

fn describe(params: &StructureParams, ws: &Workspace) {
    let census = validate(ws).expect("fresh build must validate");
    println!(
        "STMBench7 structure ({} levels, fan-out {}):",
        params.assembly_levels, params.assembly_fanout
    );
    println!("  complex assemblies: {}", census.complex_assemblies);
    println!("  base assemblies:    {}", census.base_assemblies);
    println!("  composite parts:    {}", census.composite_parts);
    println!("  atomic parts:       {}", census.atomic_parts);
    println!("  documents:          {}", census.documents);
    println!("  manual size:        {} chars", ws.manual.text.len());
    println!("Indexes (paper Table 1):");
    println!("  1. atomic part id         -> atomic part");
    println!(
        "  2. atomic part build date -> atomic part   ({} entries)",
        ws.atomics.by_date.len()
    );
    println!("  3. composite part id      -> composite part");
    println!(
        "  4. document title         -> document      ({} entries)",
        ws.documents.by_title.len()
    );
    println!("  5. base assembly id       -> base assembly");
    println!(
        "  6. complex assembly id    -> complex assembly ({} entries)",
        ws.sm.complex_index.len()
    );
}

struct LabArgs {
    spec: Option<String>,
    list: bool,
    preset: Option<StructureParams>,
    shards: Option<usize>,
    secs: Option<f64>,
    warmup: Option<f64>,
    reps: Option<u32>,
    threads: Option<Vec<usize>>,
    rates: Option<Vec<f64>>,
    seed: Option<u64>,
    out: Option<String>,
    compare: Option<String>,
    tolerance: Tolerance,
    trace: Option<String>,
    window: Option<u64>,
}

fn parse_lab_args(argv: &[String]) -> Result<LabArgs, String> {
    let mut args = LabArgs {
        spec: None,
        list: false,
        preset: None,
        shards: None,
        secs: None,
        warmup: None,
        reps: None,
        threads: None,
        rates: None,
        seed: None,
        out: None,
        compare: None,
        tolerance: Tolerance(1.25),
        trace: None,
        window: None,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--list" => args.list = true,
            "--preset" => {
                let v = value(&mut i)?;
                args.preset = Some(parse_preset(&v).ok_or(format!("unknown preset '{v}'"))?);
            }
            "--shards" => {
                let n: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if !(1..=stmbench7::data::sharded::MAX_SHARDS).contains(&n) {
                    return Err(format!("--shards must be in 1..=64, got {n}"));
                }
                args.shards = Some(n);
            }
            "--secs" => {
                let secs: f64 = value(&mut i)?.parse().map_err(|e| format!("--secs: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--secs must be a positive duration, got {secs}"));
                }
                args.secs = Some(secs);
            }
            "--warmup" => {
                let warmup: f64 = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
                if !warmup.is_finite() || warmup < 0.0 {
                    return Err(format!("--warmup must be ≥ 0 seconds, got {warmup}"));
                }
                args.warmup = Some(warmup);
            }
            "--reps" => {
                let n: u32 = value(&mut i)?.parse().map_err(|e| format!("--reps: {e}"))?;
                if n == 0 {
                    return Err("--reps must be ≥ 1".into());
                }
                args.reps = Some(n);
            }
            "--threads" => {
                let list = value(&mut i)?
                    .split(',')
                    .map(|t| t.parse().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<Vec<usize>, String>>()?;
                if list.is_empty() || list.contains(&0) {
                    return Err("--threads needs positive thread counts".into());
                }
                args.threads = Some(list);
            }
            "--rates" => {
                let list = value(&mut i)?
                    .split(',')
                    .map(|r| r.parse().map_err(|e| format!("--rates: {e}")))
                    .collect::<Result<Vec<f64>, String>>()?;
                if list.is_empty() || list.iter().any(|r| !r.is_finite() || *r <= 0.0) {
                    return Err("--rates needs positive arrival rates".into());
                }
                args.rates = Some(list);
            }
            "--seed" => {
                args.seed = Some(value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?)
            }
            "--out" => args.out = Some(value(&mut i)?),
            "--compare" => args.compare = Some(value(&mut i)?),
            "--tolerance" => {
                let v = value(&mut i)?;
                args.tolerance =
                    Tolerance::parse(&v).ok_or(format!("bad tolerance '{v}' (use NN% or NNx)"))?;
            }
            "--trace" => args.trace = Some(value(&mut i)?),
            "--window" => args.window = Some(parse_window(&value(&mut i)?)?),
            "-h" | "--help" => {
                print!("{LAB_USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && args.spec.is_none() => {
                args.spec = Some(other.to_string());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    Ok(args)
}

fn lab_main(argv: &[String]) -> ExitCode {
    let args = match parse_lab_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{LAB_USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        println!("built-in lab specs:");
        for (name, description) in registry::catalog() {
            println!("  {name:<14} {description}");
        }
        return ExitCode::SUCCESS;
    }
    let Some(name) = &args.spec else {
        eprintln!("error: no spec named\n\n{LAB_USAGE}");
        return ExitCode::from(2);
    };
    let Some(mut spec) = registry::build(name) else {
        eprintln!("error: unknown spec '{name}'; available:");
        for (name, _) in registry::catalog() {
            eprintln!("  {name}");
        }
        return ExitCode::from(2);
    };
    if let Some(params) = args.preset {
        spec.params = params;
    }
    if let Some(shards) = args.shards {
        spec.params = spec.params.with_shards(shards);
    }
    if let Some(secs) = args.secs {
        spec.secs_per_cell = secs;
    }
    if let Some(warmup) = args.warmup {
        spec.warmup_secs = warmup;
    }
    if let Some(reps) = args.reps {
        spec.repetitions = reps;
    }
    if let Some(seed) = args.seed {
        spec.seed = seed;
    }
    if let Some(threads) = &args.threads {
        spec = spec.with_threads(threads);
    }
    if let Some(rates) = &args.rates {
        spec = spec.with_rates(rates);
    }
    if args.trace.is_some() {
        for cell in &mut spec.cells {
            cell.trace = true;
        }
    }
    if let Some(window) = args.window {
        for cell in &mut spec.cells {
            cell.window_ms = Some(window);
        }
    }

    // Load the baseline before running anything: a mistyped path or a
    // malformed document must not waste a multi-minute grid run.
    let baseline = match &args.compare {
        None => None,
        Some(baseline_path) => {
            let text = match std::fs::read_to_string(baseline_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read baseline {baseline_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match stmbench7::lab::json::parse(&text) {
                Ok(doc) => {
                    let format = doc.get("format").and_then(|f| f.as_str());
                    if !format.is_some_and(stmbench7::lab::format_supported) {
                        eprintln!(
                            "error: baseline {baseline_path} has format {format:?}, expected {:?} or older",
                            stmbench7::lab::FORMAT
                        );
                        return ExitCode::FAILURE;
                    }
                    Some(doc)
                }
                Err(e) => {
                    eprintln!("error: baseline {baseline_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    eprintln!(
        "lab spec '{}': {} cells × {} reps × {:.2} s (+{:.2} s warmup each) — ~{:.0} s measured",
        spec.name,
        spec.cells.len(),
        spec.repetitions,
        spec.secs_per_cell,
        spec.warmup_secs,
        spec.measured_secs(),
    );
    let result = run_spec(&spec, |line| eprintln!("{line}"));

    println!(
        "{:<40} {:>12} {:>12} {:>12} {:>10}",
        "cell", "median op/s", "p95 op/s", "completed", "aborts/c"
    );
    for cell in &result.cells {
        println!(
            "{:<40} {:>12.1} {:>12.1} {:>12} {:>10.3}",
            cell.cell.key(),
            cell.throughput.median,
            cell.throughput.p95,
            cell.completed,
            cell.abort_ratio(),
        );
    }

    // Windowed SLO checks: printed for every run so the per-window tail
    // is visible, but they only *gate* (exit nonzero) under --compare,
    // mirroring the throughput regression gate.
    let slo_checks = check_slos(&result);
    if !slo_checks.is_empty() {
        println!("\nwindowed SLO checks (p99 per window):");
        for check in &slo_checks {
            let aggregate = check
                .aggregate_p99_us
                .map_or_else(|| "n/a".to_string(), |us| format!("{us} us"));
            println!(
                "  {} {}: {} breaching windows (allowed {}) against p99 ≤ {} us; worst window p99 {} us, aggregate p99 {aggregate}",
                if check.pass() { "PASS" } else { "FAIL" },
                check.key,
                check.violations,
                check.slo.max_violation_windows,
                check.slo.p99_us,
                check.worst_p99_us,
            );
        }
    }
    let slo_failed = slo_checks.iter().any(|c| !c.pass());

    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| format!("results/BENCH_{}.json", spec.name));
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let document = result.to_json();
    if let Err(e) = std::fs::write(&out_path, document.render()) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    if let Some(dir) = &args.trace {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        let mut written = 0usize;
        for cell in &result.cells {
            if let Some(trace) = &cell.trace {
                let file = format!("{dir}/{}.trace.json", trace_file_stem(&cell.cell.key()));
                if let Err(e) = std::fs::write(&file, chrome_trace_json(trace)) {
                    eprintln!("error: cannot write {file}: {e}");
                    return ExitCode::FAILURE;
                }
                written += 1;
            }
        }
        eprintln!("wrote {written} trace files to {dir}");
    }

    if let Some(baseline) = &baseline {
        match compare_documents(baseline, &document, args.tolerance) {
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            Ok(comparison) => {
                print!("{}", comparison.render());
                if !comparison.ok() {
                    return ExitCode::FAILURE;
                }
            }
        }
        if slo_failed {
            eprintln!("SLO gate failed: a cell breached its windowed p99 objective");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

struct ServeArgs {
    schedule: Option<Schedule>,
    backend: BackendChoice,
    params: StructureParams,
    workload: WorkloadType,
    workers: Option<usize>,
    queue_cap: usize,
    admission: Admission,
    batch: usize,
    affinity: Affinity,
    requests: Option<u64>,
    length: f64,
    seed: u64,
    no_traversals: bool,
    no_sms: bool,
    astm_friendly: bool,
    validate: bool,
    trace: Option<String>,
    window: Option<u64>,
}

fn parse_serve_args(argv: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        schedule: None,
        backend: BackendChoice::Coarse,
        params: StructureParams::small(),
        workload: WorkloadType::ReadDominated,
        workers: None,
        queue_cap: 1024,
        admission: Admission::Block,
        batch: 1,
        affinity: Affinity::None,
        requests: None,
        length: 5.0,
        seed: 1,
        no_traversals: false,
        no_sms: false,
        astm_friendly: false,
        validate: false,
        trace: None,
        window: None,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "-g" | "--backend" => {
                let v = value(&mut i)?;
                args.backend = BackendChoice::parse(&v).ok_or(format!("unknown strategy '{v}'"))?;
            }
            "-s" => {
                let v = value(&mut i)?;
                let shards = args.params.index_shards;
                args.params = parse_preset(&v)
                    .ok_or(format!("unknown preset '{v}'"))?
                    .with_shards(shards);
            }
            "--shards" => {
                let n: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if n == 0 {
                    return Err("--shards must be ≥ 1".into());
                }
                args.params = args.params.clone().with_shards(n);
                args.params.check().map_err(|e| format!("--shards: {e}"))?;
            }
            "-w" => {
                let v = value(&mut i)?;
                args.workload = WorkloadType::parse(&v).ok_or(format!("unknown workload '{v}'"))?;
            }
            "--workers" => {
                let n: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if n == 0 {
                    return Err("--workers must be ≥ 1".into());
                }
                args.workers = Some(n);
            }
            "--queue-cap" => {
                let n: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
                if n == 0 {
                    return Err("--queue-cap must be ≥ 1".into());
                }
                args.queue_cap = n;
            }
            "--admission" => {
                let v = value(&mut i)?;
                args.admission = Admission::parse(&v)
                    .ok_or(format!("unknown admission policy '{v}' (block|reject)"))?;
            }
            "--batch" => {
                let k: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
                if k == 0 {
                    return Err("--batch must be ≥ 1".into());
                }
                args.batch = k;
            }
            "--affinity" => {
                let v = value(&mut i)?;
                args.affinity =
                    Affinity::parse(&v).ok_or(format!("unknown affinity '{v}' (none|shard)"))?;
            }
            "--requests" => {
                args.requests = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--requests: {e}"))?,
                )
            }
            "-l" => {
                let secs: f64 = value(&mut i)?.parse().map_err(|e| format!("-l: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("-l must be a positive duration, got {secs}"));
                }
                args.length = secs;
            }
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--no-traversals" => args.no_traversals = true,
            "--no-sms" => args.no_sms = true,
            "--astm-friendly" => args.astm_friendly = true,
            "--validate" => args.validate = true,
            "--trace" => args.trace = Some(value(&mut i)?),
            "--window" => args.window = Some(parse_window(&value(&mut i)?)?),
            "-h" | "--help" => {
                print!("{SERVE_USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && args.schedule.is_none() => {
                args.schedule = Some(Schedule::parse(other).ok_or(format!(
                    "bad schedule '{other}' (closed:N | open:RATE | bursty:RATE:BURST:PERIOD_MS)"
                ))?);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    Ok(args)
}

fn serve_main(argv: &[String]) -> ExitCode {
    let args = match parse_serve_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{SERVE_USAGE}");
            return ExitCode::from(2);
        }
    };
    let Some(schedule) = args.schedule else {
        eprintln!("error: no schedule named\n\n{SERVE_USAGE}");
        return ExitCode::from(2);
    };
    let workers = args.workers.unwrap_or(match schedule {
        Schedule::Closed { clients } => clients,
        _ => 2,
    });
    let recorder = match &args.trace {
        Some(_) => Recorder::enabled(),
        None => Recorder::off(),
    };
    let cfg = ServeConfig {
        schedule,
        workers,
        queue_cap: args.queue_cap,
        admission: args.admission,
        batch_max: args.batch,
        affinity: args.affinity,
        workload: args.workload,
        long_traversals: !args.no_traversals,
        structure_mods: !args.no_sms,
        filter: if args.astm_friendly {
            OpFilter::astm_friendly()
        } else {
            OpFilter::none()
        },
        seed: args.seed,
        recorder: recorder.clone(),
        window_ms: args.window,
    };
    let requests = match args.requests {
        Some(n) => cfg.generate(n),
        None => match cfg.generate_for(Duration::from_secs_f64(args.length)) {
            Some(reqs) => reqs,
            None => {
                eprintln!("error: closed schedules need --requests\n\n{SERVE_USAGE}");
                return ExitCode::from(2);
            }
        },
    };
    if requests.is_empty() {
        eprintln!(
            "error: the schedule offers no requests before the horizon; raise -l or the rate"
        );
        return ExitCode::from(2);
    }

    eprintln!(
        "building structure (preset with {} atomic parts)...",
        args.params.initial_atomics()
    );
    let ws = Workspace::build(args.params.clone(), args.seed);
    let backend = AnyBackend::build_traced(args.backend, ws, recorder.clone());
    eprintln!(
        "serving: schedule={} backend={} workers={} queue={} admission={} batch={} affinity={} requests={}",
        schedule.key(),
        backend.name(),
        cfg.workers,
        cfg.queue_cap,
        cfg.admission.key(),
        cfg.batch_max,
        cfg.affinity.key(),
        requests.len(),
    );
    let result = serve(&backend, &args.params, &cfg, &requests);
    print!("{}", result.report.render(false));

    if args.validate {
        match validate(&backend.export()) {
            Ok(census) => eprintln!(
                "structure valid: {} atomic parts, {} assemblies",
                census.atomic_parts,
                census.base_assemblies + census.complex_assemblies
            ),
            Err(msg) => {
                eprintln!("STRUCTURE CORRUPTED: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.trace {
        // Drop first: the RCL backend's server thread only flushes its
        // trace lane when the thread exits at backend drop.
        drop(backend);
        if let Err(msg) = write_trace(path, &recorder.take_trace()) {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

struct NetServeArgs {
    addr: String,
    backend: BackendChoice,
    params: StructureParams,
    workload: WorkloadType,
    workers: usize,
    queue_cap: usize,
    admission: Admission,
    batch: usize,
    affinity: Affinity,
    seed: u64,
    validate: bool,
    trace: Option<String>,
    window: Option<u64>,
    metrics: Option<String>,
}

fn parse_net_serve_args(argv: &[String]) -> Result<NetServeArgs, String> {
    let mut args = NetServeArgs {
        addr: "127.0.0.1:7117".to_string(),
        backend: BackendChoice::Coarse,
        params: StructureParams::small(),
        workload: WorkloadType::ReadDominated,
        workers: 2,
        queue_cap: 1024,
        admission: Admission::Block,
        batch: 1,
        affinity: Affinity::None,
        seed: 1,
        validate: false,
        trace: None,
        window: None,
        metrics: None,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&mut i)?,
            "-g" | "--backend" => {
                let v = value(&mut i)?;
                args.backend = BackendChoice::parse(&v).ok_or(format!("unknown strategy '{v}'"))?;
            }
            "-s" => {
                let v = value(&mut i)?;
                let shards = args.params.index_shards;
                args.params = parse_preset(&v)
                    .ok_or(format!("unknown preset '{v}'"))?
                    .with_shards(shards);
            }
            "--shards" => {
                let n: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if n == 0 {
                    return Err("--shards must be ≥ 1".into());
                }
                args.params = args.params.clone().with_shards(n);
                args.params.check().map_err(|e| format!("--shards: {e}"))?;
            }
            "-w" => {
                let v = value(&mut i)?;
                args.workload = WorkloadType::parse(&v).ok_or(format!("unknown workload '{v}'"))?;
            }
            "--workers" => {
                let n: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if n == 0 {
                    return Err("--workers must be ≥ 1".into());
                }
                args.workers = n;
            }
            "--queue-cap" => {
                let n: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
                if n == 0 {
                    return Err("--queue-cap must be ≥ 1".into());
                }
                args.queue_cap = n;
            }
            "--admission" => {
                let v = value(&mut i)?;
                args.admission = Admission::parse(&v)
                    .ok_or(format!("unknown admission policy '{v}' (block|reject)"))?;
            }
            "--batch" => {
                let k: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
                if k == 0 {
                    return Err("--batch must be ≥ 1".into());
                }
                args.batch = k;
            }
            "--affinity" => {
                let v = value(&mut i)?;
                args.affinity =
                    Affinity::parse(&v).ok_or(format!("unknown affinity '{v}' (none|shard)"))?;
            }
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--validate" => args.validate = true,
            "--trace" => args.trace = Some(value(&mut i)?),
            "--window" => args.window = Some(parse_window(&value(&mut i)?)?),
            "--metrics" => args.metrics = Some(value(&mut i)?),
            "-h" | "--help" => {
                print!("{NET_SERVE_USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    Ok(args)
}

fn net_serve_main(argv: &[String]) -> ExitCode {
    let args = match parse_net_serve_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{NET_SERVE_USAGE}");
            return ExitCode::from(2);
        }
    };
    let listener = match std::net::TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let metrics = match &args.metrics {
        None => None,
        Some(addr) => match std::net::TcpListener::bind(addr) {
            Ok(l) => Some(l),
            Err(e) => {
                eprintln!("error: cannot bind metrics endpoint {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    // A metrics endpoint without a sampler would expose frozen gauges;
    // scraping implies windowing at the default cadence.
    let mut window = args.window;
    if metrics.is_some() {
        window.get_or_insert(stmbench7::obs::DEFAULT_WINDOW_MS);
    }
    eprintln!(
        "building structure (preset with {} atomic parts)...",
        args.params.initial_atomics()
    );
    let ws = Workspace::build(args.params.clone(), args.seed);
    let recorder = match &args.trace {
        Some(_) => Recorder::enabled(),
        None => Recorder::off(),
    };
    let backend = AnyBackend::build_traced(args.backend, ws, recorder.clone());
    let cfg = ServeConfig {
        // The schedule is inert: arrivals come off the wire. The report
        // overrides it with `net:<addr>`.
        schedule: Schedule::Closed {
            clients: args.workers,
        },
        workers: args.workers,
        queue_cap: args.queue_cap,
        admission: args.admission,
        batch_max: args.batch,
        affinity: args.affinity,
        workload: args.workload,
        long_traversals: true,
        structure_mods: true,
        filter: OpFilter::none(),
        seed: args.seed,
        recorder: recorder.clone(),
        window_ms: window,
    };
    // `metrics on` precedes `listening on`: scripts that break at the
    // readiness line see both addresses once it appears.
    if let Some(m) = &metrics {
        match m.local_addr() {
            Ok(addr) => eprintln!("metrics on {addr}"),
            Err(e) => {
                eprintln!("error: bound metrics socket has no address: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The readiness line the shutdown smoke test (and any script driving
    // `--addr host:0`) parses for the actual port.
    match listener.local_addr() {
        Ok(addr) => eprintln!("listening on {addr}"),
        Err(e) => {
            eprintln!("error: bound socket has no address: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "serving: backend={} workers={} queue={} admission={} batch={} affinity={}",
        backend.name(),
        cfg.workers,
        cfg.queue_cap,
        cfg.admission.key(),
        cfg.batch_max,
        cfg.affinity.key(),
    );
    let result = match serve_net(&backend, &args.params, &cfg, listener, metrics) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: server failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("shutdown frame received; queue drained");
    print!("{}", result.report.render(false));
    if args.validate {
        match validate(&backend.export()) {
            Ok(census) => eprintln!(
                "structure valid: {} atomic parts, {} assemblies",
                census.atomic_parts,
                census.base_assemblies + census.complex_assemblies
            ),
            Err(msg) => {
                eprintln!("STRUCTURE CORRUPTED: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.trace {
        // Drop first: the RCL backend's server thread only flushes its
        // trace lane when the thread exits at backend drop.
        drop(backend);
        if let Err(msg) = write_trace(path, &recorder.take_trace()) {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

struct NetDriveArgs {
    schedule: Option<Schedule>,
    addr: Option<String>,
    connections: usize,
    inflight: usize,
    workload: WorkloadType,
    requests: Option<u64>,
    length: f64,
    seed: u64,
    no_traversals: bool,
    no_sms: bool,
    astm_friendly: bool,
    shutdown: bool,
}

fn parse_net_drive_args(argv: &[String]) -> Result<NetDriveArgs, String> {
    let mut args = NetDriveArgs {
        schedule: None,
        addr: None,
        connections: 2,
        inflight: 0,
        workload: WorkloadType::ReadDominated,
        requests: None,
        length: 5.0,
        seed: 1,
        no_traversals: false,
        no_sms: false,
        astm_friendly: false,
        shutdown: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = Some(value(&mut i)?),
            "--connections" => {
                let n: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
                if n == 0 {
                    return Err("--connections must be ≥ 1".into());
                }
                args.connections = n;
            }
            "--inflight" => {
                args.inflight = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--inflight: {e}"))?;
            }
            "-w" => {
                let v = value(&mut i)?;
                args.workload = WorkloadType::parse(&v).ok_or(format!("unknown workload '{v}'"))?;
            }
            "--requests" => {
                args.requests = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--requests: {e}"))?,
                )
            }
            "-l" => {
                let secs: f64 = value(&mut i)?.parse().map_err(|e| format!("-l: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("-l must be a positive duration, got {secs}"));
                }
                args.length = secs;
            }
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--no-traversals" => args.no_traversals = true,
            "--no-sms" => args.no_sms = true,
            "--astm-friendly" => args.astm_friendly = true,
            "--shutdown" => args.shutdown = true,
            "-h" | "--help" => {
                print!("{NET_DRIVE_USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && args.schedule.is_none() => {
                args.schedule = Some(Schedule::parse(other).ok_or(format!(
                    "bad schedule '{other}' (closed:N | open:RATE | bursty:RATE:BURST:PERIOD_MS)"
                ))?);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    Ok(args)
}

fn net_drive_main(argv: &[String]) -> ExitCode {
    let args = match parse_net_drive_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{NET_DRIVE_USAGE}");
            return ExitCode::from(2);
        }
    };
    let Some(schedule) = args.schedule else {
        eprintln!("error: no schedule named\n\n{NET_DRIVE_USAGE}");
        return ExitCode::from(2);
    };
    let Some(addr) = args.addr else {
        eprintln!("error: --addr is required\n\n{NET_DRIVE_USAGE}");
        return ExitCode::from(2);
    };
    let cfg = DriveConfig {
        schedule,
        connections: args.connections,
        inflight: args.inflight,
        workload: args.workload,
        long_traversals: !args.no_traversals,
        structure_mods: !args.no_sms,
        filter: if args.astm_friendly {
            OpFilter::astm_friendly()
        } else {
            OpFilter::none()
        },
        seed: args.seed,
    };
    let requests = match args.requests {
        Some(n) => cfg.generate(n),
        None => match cfg.generate_for(Duration::from_secs_f64(args.length)) {
            Some(reqs) => reqs,
            None => {
                eprintln!("error: closed schedules need --requests\n\n{NET_DRIVE_USAGE}");
                return ExitCode::from(2);
            }
        },
    };
    if requests.is_empty() {
        eprintln!(
            "error: the schedule offers no requests before the horizon; raise -l or the rate"
        );
        return ExitCode::from(2);
    }
    eprintln!(
        "driving: schedule={} addr={addr} connections={} requests={}",
        schedule.key(),
        cfg.connections,
        requests.len(),
    );
    let result = match drive(addr.as_str(), &cfg, &requests) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: drive failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", result.report.render(false));
    if args.shutdown {
        if let Err(e) = stmbench7::net::shutdown(addr.as_str()) {
            eprintln!("error: shutdown not acknowledged: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("server shutdown acknowledged");
    }
    ExitCode::SUCCESS
}

/// Writes a trace as Chrome `trace_event` JSON, creating parent
/// directories as needed.
fn write_trace(path: &str, trace: &Trace) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, chrome_trace_json(trace))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!(
        "wrote {path} ({} events, {} dropped)",
        trace.events.len(),
        trace.dropped
    );
    Ok(())
}

/// Flattens a cell key (`coarse/rw/4t/...`) into a filename stem.
fn trace_file_stem(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Parses a Chrome `trace_event` JSON file written by `--trace` back
/// into a [`Trace`] (the inverse of `chrome_trace_json`).
fn parse_trace_file(text: &str) -> Result<Trace, String> {
    let doc = stmbench7::lab::json::parse(text)?;
    let events = doc.as_array().ok_or("trace is not a JSON array")?;
    let mut trace = Trace::default();
    // Event names come from a small static vocabulary (operation names,
    // lock names, phases), so leaking one copy per distinct name to get
    // back to `&'static str` is bounded.
    let mut names: Vec<&'static str> = Vec::new();
    for ev in events {
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("event without a name")?;
        if name == "trace_dropped" {
            trace.dropped = ev
                .get("args")
                .and_then(|a| a.get("dropped"))
                .and_then(|d| d.as_u64())
                .unwrap_or(0);
            continue;
        }
        let Some(layer) = ev
            .get("cat")
            .and_then(|v| v.as_str())
            .and_then(Layer::parse)
        else {
            continue; // foreign category; not one of ours
        };
        let kind = ev
            .get("args")
            .and_then(|a| a.get("kind"))
            .and_then(|k| k.as_str())
            .and_then(EventKind::parse)
            .ok_or_else(|| format!("event '{name}' has no recognizable kind"))?;
        let static_name = match names.iter().find(|n| **n == name) {
            Some(n) => *n,
            None => {
                let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
                names.push(leaked);
                leaked
            }
        };
        let micros = |key: &str| {
            ev.get(key)
                .and_then(|v| v.as_f64())
                .map_or(0, |us| (us * 1_000.0).round() as u64)
        };
        trace.events.push(Event {
            layer,
            kind,
            name: static_name,
            t_ns: micros("ts"),
            dur_ns: micros("dur"),
            arg: ev
                .get("args")
                .and_then(|a| a.get("arg"))
                .and_then(|v| v.as_u64())
                .unwrap_or(0),
            tid: ev.get("tid").and_then(|v| v.as_u64()).unwrap_or(0) as u32,
        });
    }
    Ok(trace)
}

fn trace_summary_main(argv: &[String]) -> ExitCode {
    if argv.iter().any(|a| a == "-h" || a == "--help") {
        print!("{TRACE_SUMMARY_USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut path: Option<&String> = None;
    let mut top: Option<usize> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--top" => {
                i += 1;
                let Some(v) = argv.get(i) else {
                    eprintln!("error: missing value for --top\n\n{TRACE_SUMMARY_USAGE}");
                    return ExitCode::from(2);
                };
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => top = Some(n),
                    _ => {
                        eprintln!("error: --top needs a count ≥ 1, got '{v}'");
                        return ExitCode::from(2);
                    }
                }
            }
            _ if path.is_none() && !argv[i].starts_with('-') => path = Some(&argv[i]),
            other => {
                eprintln!("error: unknown argument '{other}'\n\n{TRACE_SUMMARY_USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("error: expected a trace file\n\n{TRACE_SUMMARY_USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match parse_trace_file(&text) {
        Ok(trace) => {
            print!("{}", summarize(&trace));
            if let Some(n) = top {
                println!();
                print!("{}", top_spans(&trace, n));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("lab") {
        return lab_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("trace-summary") {
        return trace_summary_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        return serve_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("net-serve") {
        return net_serve_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("net-drive") {
        return net_drive_main(&argv[1..]);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "building structure (preset with {} atomic parts)...",
        args.params.initial_atomics()
    );
    let ws = Workspace::build(args.params.clone(), args.seed);
    if args.describe {
        describe(&args.params, &ws);
        return ExitCode::SUCCESS;
    }
    let recorder = match &args.trace {
        Some(_) => Recorder::enabled(),
        None => Recorder::off(),
    };
    let backend = AnyBackend::build_traced(args.backend, ws, recorder.clone());

    let cfg = BenchConfig {
        threads: args.threads,
        mode: match args.ops {
            Some(n) => RunMode::FixedOps(n),
            None => RunMode::Timed(Duration::from_secs(args.length)),
        },
        workload: args.workload,
        long_traversals: !args.no_traversals,
        structure_mods: !args.no_sms,
        filter: if args.astm_friendly {
            OpFilter::astm_friendly()
        } else {
            OpFilter::none()
        },
        seed: args.seed,
        histograms: args.histograms,
        recorder: recorder.clone(),
        window_ms: args.window,
    };
    eprintln!(
        "running: backend={} threads={} workload={} ...",
        backend.name(),
        cfg.threads,
        cfg.workload.name()
    );
    let report = run_benchmark(&backend, &args.params, &cfg);
    print!("{}", report.render(args.histograms));

    if let Some(path) = &args.csv {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("cannot open CSV file");
        for row in report.csv_rows() {
            writeln!(file, "{row}").expect("cannot write CSV row");
        }
        eprintln!("appended {} rows to {path}", report.csv_rows().len());
    }

    if args.validate {
        match validate(&backend.export()) {
            Ok(census) => eprintln!(
                "structure valid: {} atomic parts, {} assemblies",
                census.atomic_parts,
                census.base_assemblies + census.complex_assemblies
            ),
            Err(msg) => {
                eprintln!("STRUCTURE CORRUPTED: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.trace {
        // Drop first: the RCL backend's server thread only flushes its
        // trace lane when the thread exits at backend drop.
        drop(backend);
        if let Err(msg) = write_trace(path, &recorder.take_trace()) {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
