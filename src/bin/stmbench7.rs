//! The STMBench7 command-line interface, mirroring Appendix A.1 of the
//! paper:
//!
//! ```text
//! stmbench7 -t numThreads -l length -w r|rw|w -g coarse|medium|...
//!           [--no-traversals] [--no-sms] [--ttc-histograms]
//! ```
//!
//! Extensions beyond the paper's flags: `-s` structure preset, `--seed`,
//! `--ops` (deterministic fixed-operation runs), `--astm-friendly` (the
//! §5 operation filter), `--cm` (contention manager) and `--csv`.

use std::process::ExitCode;
use std::time::Duration;

use stmbench7::backend::Backend;
use stmbench7::core::{run_benchmark, BenchConfig, OpFilter, RunMode, WorkloadType};
use stmbench7::data::{validate, StructureParams, Workspace};
use stmbench7::stm::ContentionManager;
use stmbench7::{parse_preset, AnyBackend, BackendChoice};

const USAGE: &str = "\
stmbench7 — the EuroSys 2007 STM benchmark, in Rust

USAGE:
    stmbench7 [OPTIONS]

OPTIONS (paper Appendix A.1):
    -t <num>            number of threads                  [default: 1]
    -l <seconds>        benchmark length                   [default: 10]
    -w r|rw|w|uNN       workload type; uNN = custom NN%
                        updates (extension)                [default: r]
    -g <strategy>       synchronization strategy           [default: coarse]
                        one of: sequential, coarse, medium, fine,
                        astm, astm-sharded, astm-visible,
                        tl2, tl2-sharded, norec, norec-sharded
    --no-traversals     disable long traversals
    --no-sms            disable structure modification operations
    --ttc-histograms    print TTC (latency) histograms

EXTENSIONS:
    -s <preset>         structure size: tiny, small, standard, paper-full
                                                           [default: small]
    --ops <num>         run a fixed number of operations per thread
                        instead of a timed run
    --seed <num>        RNG seed                           [default: 1]
    --cm <name>         ASTM contention manager: aggressive, suicide,
                        backoff, karma, timestamp, polka   [default: polka]
    --astm-friendly     apply the paper's §5 operation filter
    --validate          validate the structure after the run
    --csv <file>        append per-operation CSV rows to <file>
    --describe          print the structure census and indexes, then exit
    -h, --help          this text
";

struct Args {
    threads: usize,
    length: u64,
    ops: Option<u64>,
    workload: WorkloadType,
    backend: BackendChoice,
    params: StructureParams,
    no_traversals: bool,
    no_sms: bool,
    histograms: bool,
    astm_friendly: bool,
    validate: bool,
    seed: u64,
    csv: Option<String>,
    describe: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 1,
        length: 10,
        ops: None,
        workload: WorkloadType::ReadDominated,
        backend: BackendChoice::Coarse,
        params: StructureParams::small(),
        no_traversals: false,
        no_sms: false,
        histograms: false,
        astm_friendly: false,
        validate: false,
        seed: 1,
        csv: None,
        describe: false,
    };
    let mut cm = ContentionManager::Polka;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "-t" => args.threads = value(&mut i)?.parse().map_err(|e| format!("-t: {e}"))?,
            "-l" => args.length = value(&mut i)?.parse().map_err(|e| format!("-l: {e}"))?,
            "--ops" => args.ops = Some(value(&mut i)?.parse().map_err(|e| format!("--ops: {e}"))?),
            "-w" => {
                let v = value(&mut i)?;
                args.workload = WorkloadType::parse(&v).ok_or(format!("unknown workload '{v}'"))?;
            }
            "-g" => {
                let v = value(&mut i)?;
                args.backend = BackendChoice::parse(&v).ok_or(format!("unknown strategy '{v}'"))?;
            }
            "-s" => {
                let v = value(&mut i)?;
                args.params = parse_preset(&v).ok_or(format!("unknown preset '{v}'"))?;
            }
            "--cm" => {
                let v = value(&mut i)?;
                cm = ContentionManager::parse(&v)
                    .ok_or(format!("unknown contention manager '{v}'"))?;
            }
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--csv" => args.csv = Some(value(&mut i)?),
            "--no-traversals" => args.no_traversals = true,
            "--no-sms" => args.no_sms = true,
            "--ttc-histograms" => args.histograms = true,
            "--astm-friendly" => args.astm_friendly = true,
            "--validate" => args.validate = true,
            "--describe" => args.describe = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if let BackendChoice::Astm {
        granularity,
        visible,
        ..
    } = args.backend
    {
        args.backend = BackendChoice::Astm {
            granularity,
            cm,
            visible,
        };
    }
    Ok(args)
}

fn describe(params: &StructureParams, ws: &Workspace) {
    let census = validate(ws).expect("fresh build must validate");
    println!(
        "STMBench7 structure ({} levels, fan-out {}):",
        params.assembly_levels, params.assembly_fanout
    );
    println!("  complex assemblies: {}", census.complex_assemblies);
    println!("  base assemblies:    {}", census.base_assemblies);
    println!("  composite parts:    {}", census.composite_parts);
    println!("  atomic parts:       {}", census.atomic_parts);
    println!("  documents:          {}", census.documents);
    println!("  manual size:        {} chars", ws.manual.text.len());
    println!("Indexes (paper Table 1):");
    println!("  1. atomic part id         -> atomic part");
    println!(
        "  2. atomic part build date -> atomic part   ({} entries)",
        ws.atomics.by_date.len()
    );
    println!("  3. composite part id      -> composite part");
    println!(
        "  4. document title         -> document      ({} entries)",
        ws.documents.by_title.len()
    );
    println!("  5. base assembly id       -> base assembly");
    println!(
        "  6. complex assembly id    -> complex assembly ({} entries)",
        ws.sm.complex_index.len()
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "building structure (preset with {} atomic parts)...",
        args.params.initial_atomics()
    );
    let ws = Workspace::build(args.params.clone(), args.seed);
    if args.describe {
        describe(&args.params, &ws);
        return ExitCode::SUCCESS;
    }
    let backend = AnyBackend::build(args.backend, ws);

    let cfg = BenchConfig {
        threads: args.threads,
        mode: match args.ops {
            Some(n) => RunMode::FixedOps(n),
            None => RunMode::Timed(Duration::from_secs(args.length)),
        },
        workload: args.workload,
        long_traversals: !args.no_traversals,
        structure_mods: !args.no_sms,
        filter: if args.astm_friendly {
            OpFilter::astm_friendly()
        } else {
            OpFilter::none()
        },
        seed: args.seed,
        histograms: args.histograms,
    };
    eprintln!(
        "running: backend={} threads={} workload={} ...",
        backend.name(),
        cfg.threads,
        cfg.workload.name()
    );
    let report = run_benchmark(&backend, &args.params, &cfg);
    print!("{}", report.render(args.histograms));

    if let Some(path) = &args.csv {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("cannot open CSV file");
        for row in report.csv_rows() {
            writeln!(file, "{row}").expect("cannot write CSV row");
        }
        eprintln!("appended {} rows to {path}", report.csv_rows().len());
    }

    if args.validate {
        match validate(&backend.export()) {
            Ok(census) => eprintln!(
                "structure valid: {} atomic parts, {} assemblies",
                census.atomic_parts,
                census.base_assemblies + census.complex_assemblies
            ),
            Err(msg) => {
                eprintln!("STRUCTURE CORRUPTED: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
