//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` behind parking_lot's
//! non-poisoning API (guards returned directly, no `Result`). A poisoned
//! std lock — a panic while holding the guard — is recovered by taking
//! the inner value, matching parking_lot's "poisoning does not exist"
//! semantics closely enough for this workspace.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(RwLockReadGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(RwLockWriteGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let mut l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert!(l.try_write().is_some());
        *l.get_mut() = vec![];
        assert_eq!(l.into_inner(), Vec::<i32>::new());
    }
}
