//! `any::<T>()` for the primitive types the test suites draw directly.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T`, uniformly over its whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
