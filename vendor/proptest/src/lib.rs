//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors the subset of proptest STMBench7's test suites use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_filter`, range/tuple/`Just`/union/vec strategies, `any::<T>()`
//! for primitives, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its generated inputs via
//!   `Debug` in the panic message instead of minimizing them.
//! * **Deterministic seeding.** Case `i` of test `t` derives its RNG
//!   from `(hash(t), i)`, so failures reproduce exactly across runs.
//! * **`PROPTEST_CASES` caps.** When the env var is set it *clamps*
//!   every suite's case count (CI uses this to bound runtime); a
//!   file-level `ProptestConfig { cases, .. }` otherwise applies as-is.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that generates `cases` random inputs and runs the
/// body, which may use `prop_assert*` and `?` with [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut rejects: u32 = 0;
            for case in 0..cases {
                let mut rng = $crate::test_runner::TestRng::for_case(test_name, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(r)) => {
                        rejects += 1;
                        assert!(
                            rejects <= config.max_global_rejects,
                            "{test_name}: too many rejected cases ({rejects}); last: {r}"
                        );
                    }
                    ::core::result::Result::Err(e) => panic!(
                        "proptest case {case}/{cases} of {test_name} failed \
                         (deterministic; rerun reproduces it): {e}"
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts inside a proptest body, failing the case (not panicking) so
/// the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
