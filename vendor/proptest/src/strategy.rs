//! The [`Strategy`] trait and the combinators the workspace's test
//! suites use. Strategies only *generate* (no shrink trees).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of random values of type `Self::Value`.
///
/// Object-safe: `generate` takes no type parameters, so strategies can
/// be boxed ([`Strategy::boxed`]) and mixed in a [`Union`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            predicate,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`] and
/// consumed by [`Union`] / `prop_oneof!`.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategies behind references generate through the reference, which
/// lets the `proptest!` macro take `&strat` without consuming it.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// The result of [`Strategy::prop_filter`]: rejection-samples until the
/// predicate passes, panicking after a bounded number of attempts (a
/// filter that never matches is a bug in the test, not a flake).
pub struct Filter<S, F> {
    source: S,
    whence: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.source.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive candidates",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies — the engine behind
/// `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
