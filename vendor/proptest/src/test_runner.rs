//! Test-runner plumbing: configuration, the per-case RNG, and the error
//! type `prop_assert*` and `?` produce inside a [`crate::proptest!`] body.

use std::fmt;

/// Suite configuration; only `cases` is meaningful in this stand-in,
/// the remaining fields exist so `..ProptestConfig::default()` patterns
/// from real proptest keep compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; rejection sampling is bounded
    /// internally by [`crate::strategy::Filter`].
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// Applies the `PROPTEST_CASES` environment variable as a *cap* on the
/// configured case count, so CI can bound every suite at once without
/// editing per-file configs.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(cap) => configured.min(cap.max(1)),
            Err(_) => configured,
        },
        Err(_) => configured,
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected (e.g. a filter never matched); the case
    /// is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// The per-case random source handed to strategies. Seeded from the
/// test's name and case index: the stream never depends on execution
/// order, so every failure reproduces by rerunning the test.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut state = h ^ (u64::from(case) << 32) ^ u64::from(case);
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// xoshiro256++.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
