//! Collection strategies: `proptest::collection::vec`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty vec size range");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = std::collections::BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        assert!(self.size.start < self.size.end, "empty set size range");
        let span = (self.size.end - self.size.start) as u64;
        let target = self.size.start + rng.below(span) as usize;
        let mut set = std::collections::BTreeSet::new();
        // Duplicates shrink the set below target, as in real proptest.
        for _ in 0..target {
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// A `BTreeSet` with *up to* `size` elements drawn from `element`.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}
