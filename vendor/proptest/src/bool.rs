//! `proptest::bool::ANY`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Copy, Debug)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Either boolean, with equal probability.
pub const ANY: BoolAny = BoolAny;
