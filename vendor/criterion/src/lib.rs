//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface `benches/paper.rs` uses — groups,
//! `bench_function`, `iter`, `iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros — over a deliberately simple harness: warm
//! up briefly, then time batches until the measurement budget is spent,
//! and print mean ns/iteration. No statistics, plots, or baselines;
//! those arrive when the real crate can be fetched. Honors a
//! substring filter argument like the real CLI (`cargo bench -- tl2`).

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
struct Settings {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            sample_size: 20,
            filter: None,
        }
    }
}

/// The top-level harness handle.
#[derive(Clone, Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.settings.warm_up_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Reads the benchmark-name filter from `cargo bench -- <filter>`
    /// style arguments. Flags are ignored; a flag that is not a known
    /// boolean consumes the following token as its value, so e.g.
    /// `--save-baseline main` is never misread as the filter `main`.
    pub fn configure_from_args(mut self) -> Criterion {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if let Some(flag) = arg.strip_prefix('-') {
                let flag = flag.trim_start_matches('-');
                let boolean = matches!(
                    flag,
                    "" | "bench" | "test" | "nocapture" | "quiet" | "verbose" | "list" | "exact"
                );
                if !boolean && !flag.contains('=') {
                    i += 1; // skip the flag's value token
                }
            } else {
                filter = Some(arg.clone());
            }
            i += 1;
        }
        self.settings.filter = filter;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.settings.clone();
        run_one(&settings, &id.into(), f);
        self
    }

    pub fn final_summary(self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.settings, &full, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(settings: &Settings, id: &str, mut f: F) {
    if let Some(filter) = &settings.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        budget: settings.measurement_time,
        warm_up: settings.warm_up_time,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{id:<60} (no iterations recorded)");
        return;
    }
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    println!("{id:<60} {ns:>14.1} ns/iter ({} iters)", bencher.iters);
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a group runner function compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
