//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface `benches/paper.rs` uses — groups,
//! `bench_function`, `iter`, `iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros — over a deliberately simple harness: warm
//! up briefly, then split the measurement budget into `sample_size`
//! timed samples and print mean, median and standard deviation of
//! ns/iteration across them, after Tukey IQR outlier rejection (samples
//! outside `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]` are dropped and reported,
//! echoing real criterion's outlier classification). No plots or saved
//! baselines; those arrive when the real crate can be fetched (the
//! lab harness's `--compare` covers regression gating meanwhile).
//! Honors a substring filter argument like the real CLI
//! (`cargo bench -- tl2`).

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
struct Settings {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            sample_size: 20,
            filter: None,
        }
    }
}

/// The top-level harness handle.
#[derive(Clone, Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.settings.warm_up_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Reads the benchmark-name filter from `cargo bench -- <filter>`
    /// style arguments. Flags are ignored; a flag that is not a known
    /// boolean consumes the following token as its value, so e.g.
    /// `--save-baseline main` is never misread as the filter `main`.
    pub fn configure_from_args(mut self) -> Criterion {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if let Some(flag) = arg.strip_prefix('-') {
                let flag = flag.trim_start_matches('-');
                let boolean = matches!(
                    flag,
                    "" | "bench" | "test" | "nocapture" | "quiet" | "verbose" | "list" | "exact"
                );
                if !boolean && !flag.contains('=') {
                    i += 1; // skip the flag's value token
                }
            } else {
                filter = Some(arg.clone());
            }
            i += 1;
        }
        self.settings.filter = filter;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.settings.clone();
        run_one(&settings, &id.into(), f);
        self
    }

    pub fn final_summary(self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.settings, &full, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(settings: &Settings, id: &str, mut f: F) {
    if let Some(filter) = &settings.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        budget: settings.measurement_time,
        warm_up: settings.warm_up_time,
        sample_size: settings.sample_size,
        iters: 0,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.iters == 0 || bencher.samples.is_empty() {
        println!("{id:<60} (no iterations recorded)");
        return;
    }
    let stats = SampleStats::from(&mut bencher.samples);
    println!(
        "{id:<60} {:>12.1} ns/iter   median {:>12.1}   σ {:>10.1}   ({} samples, {} outliers, {} iters)",
        stats.mean,
        stats.median,
        stats.stddev,
        bencher.samples.len(),
        stats.outliers,
        bencher.iters,
    );
}

/// Mean, median and population standard deviation of per-iteration
/// nanosecond samples, computed after Tukey IQR outlier rejection.
struct SampleStats {
    mean: f64,
    median: f64,
    stddev: f64,
    /// Samples rejected by the IQR fences.
    outliers: usize,
}

impl SampleStats {
    fn from(samples: &mut [f64]) -> SampleStats {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let kept = Self::reject_outliers(samples);
        let n = kept.len();
        let mean = kept.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            kept[n / 2]
        } else {
            (kept[n / 2 - 1] + kept[n / 2]) / 2.0
        };
        let variance = kept.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        SampleStats {
            mean,
            median,
            stddev: variance.sqrt(),
            outliers: samples.len() - n,
        }
    }

    /// Tukey's rule over the *sorted* samples: keep the contiguous run
    /// inside `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]`. With fewer than four
    /// samples the quartiles are meaningless and everything is kept.
    fn reject_outliers(sorted: &[f64]) -> &[f64] {
        if sorted.len() < 4 {
            return sorted;
        }
        let quartile = |q: f64| -> f64 {
            // Linear interpolation between closest ranks.
            let pos = q * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
        };
        let q1 = quartile(0.25);
        let q3 = quartile(0.75);
        let iqr = q3 - q1;
        let (lo_fence, hi_fence) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        let start = sorted.partition_point(|&x| x < lo_fence);
        let end = sorted.partition_point(|&x| x <= hi_fence);
        &sorted[start..end]
    }
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    sample_size: usize,
    iters: u64,
    /// Mean ns/iteration of each timed sample.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        // Split the measurement budget into `sample_size` slices, each
        // timing a batch of iterations, so the printed statistics are
        // over per-slice means rather than one long aggregate. The
        // deadline, not the sample count, bounds the run: a routine
        // slower than one slice yields fewer samples, never a budget
        // overrun.
        let slice = self.budget / self.sample_size.max(1) as u32;
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || self.samples.is_empty() {
            let start = Instant::now();
            let mut iters = 0u64;
            // At least one iteration per sample, so a slice that
            // rounds to zero still produces a finite timing.
            loop {
                black_box(routine());
                iters += 1;
                if start.elapsed() >= slice {
                    break;
                }
            }
            let elapsed = start.elapsed();
            self.iters += iters;
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        // Each sample times a batch of routine calls (setup excluded).
        // The batch starts at one call; whenever the sample vector hits
        // its cap it is compacted by pairwise averaging and the batch
        // doubles, so memory stays bounded however fast the routine is.
        const SAMPLE_CAP: usize = 1024;
        let deadline = Instant::now() + self.budget;
        let mut batch = 1u64;
        while Instant::now() < deadline || self.samples.is_empty() {
            let mut elapsed = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed();
            }
            self.iters += batch;
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
            if self.samples.len() >= SAMPLE_CAP {
                self.samples = self
                    .samples
                    .chunks(2)
                    .map(|pair| pair.iter().sum::<f64>() / pair.len() as f64)
                    .collect();
                batch = batch.saturating_mul(2);
            }
        }
    }
}

/// Declares a group runner function compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_stats_median_and_stddev() {
        let mut odd = vec![3.0, 1.0, 2.0];
        let s = SampleStats::from(&mut odd);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mean, 2.0);
        assert!((s.stddev - (2.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.outliers, 0);

        let mut even = vec![1.0, 2.0, 3.0, 4.0];
        let s = SampleStats::from(&mut even);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.outliers, 0);

        let mut constant = vec![5.0; 8];
        let s = SampleStats::from(&mut constant);
        assert_eq!((s.mean, s.median, s.stddev), (5.0, 5.0, 0.0));
    }

    #[test]
    fn iqr_rejection_drops_a_scheduler_spike_but_keeps_tight_samples() {
        // Nineteen well-behaved samples plus one 100× spike (a GC pause /
        // scheduler preemption): the spike must not drag the mean.
        let mut spiky: Vec<f64> = (0..19).map(|i| 100.0 + f64::from(i)).collect();
        spiky.push(10_000.0);
        let s = SampleStats::from(&mut spiky);
        assert_eq!(s.outliers, 1);
        assert!(
            (s.mean - 109.0).abs() < 1e-9,
            "spike must be rejected, got mean {}",
            s.mean
        );
        assert!(s.median < 110.0);

        // Without the spike nothing is rejected from a uniform spread.
        let mut clean: Vec<f64> = (0..19).map(|i| 100.0 + f64::from(i)).collect();
        let s = SampleStats::from(&mut clean);
        assert_eq!(s.outliers, 0);

        // Low fences reject downward spikes symmetrically.
        let mut low: Vec<f64> = (0..19).map(|i| 100.0 + f64::from(i)).collect();
        low.push(1.0);
        let s = SampleStats::from(&mut low);
        assert_eq!(s.outliers, 1);
        assert!(s.mean >= 100.0);

        // Fewer than four samples: quartiles are meaningless, keep all.
        let mut tiny = vec![1.0, 1000.0, 2.0];
        let s = SampleStats::from(&mut tiny);
        assert_eq!(s.outliers, 0);
    }

    #[test]
    fn bencher_iter_collects_samples_within_budget() {
        let budget = Duration::from_millis(20);
        let mut b = Bencher {
            budget,
            warm_up: Duration::from_millis(1),
            sample_size: 5,
            iters: 0,
            samples: Vec::new(),
        };
        let start = Instant::now();
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.iters > 0);
        assert!(b.samples.len() >= 2, "fast routine fills several slices");
        assert!(
            start.elapsed() < budget * 4,
            "measurement must stay near its budget"
        );
        assert!(b.samples.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn bencher_iter_batched_bounds_sample_memory() {
        let mut b = Bencher {
            budget: Duration::from_millis(60),
            warm_up: Duration::ZERO,
            sample_size: 20,
            iters: 0,
            samples: Vec::new(),
        };
        // A ~free routine would previously record one sample per call
        // (millions); the adaptive batch must keep the vector capped.
        b.iter_batched(
            || 1u64,
            |x| std::hint::black_box(x + 1),
            BatchSize::SmallInput,
        );
        assert!(b.iters > 0);
        assert!(!b.samples.is_empty());
        assert!(
            b.samples.len() < 2048,
            "sample memory must stay bounded, got {}",
            b.samples.len()
        );
        assert!(b.samples.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn bencher_iter_survives_a_degenerate_budget() {
        // Budget below one routine call: one sample, one iteration, no
        // NaN from a zero-length slice.
        let mut b = Bencher {
            budget: Duration::from_nanos(1),
            warm_up: Duration::ZERO,
            sample_size: 20,
            iters: 0,
            samples: Vec::new(),
        };
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        assert_eq!(b.samples.len(), 1);
        assert!(b.samples[0].is_finite() && b.samples[0] > 0.0);
    }
}
