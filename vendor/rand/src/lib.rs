//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *subset* of the rand 0.8 API that STMBench7
//! actually uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng::gen_range`] / [`Rng::gen`]. Distribution quality matches
//! xoshiro256++ (the same family the real `SmallRng` uses on 64-bit
//! targets); streams are deterministic in the seed, which is all the
//! benchmark requires.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A value samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, SR: SampleRange<T>>(&mut self, range: SR) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same generator family the real `SmallRng`
    /// uses on 64-bit platforms. Deterministic in the seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10i64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
